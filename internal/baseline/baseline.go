// Package baseline reimplements the state-of-the-art hands-tuned
// methodology for Bit-serial SIMD PUD architectures — the SIMDRAM approach
// the paper compares against. Its defining properties, each a consequence
// of the multi-bit (full-operand) programming abstraction:
//
//   - every operand — inputs, constants, and every intermediate result —
//     is stored at full width in D-group rows for its whole live range;
//   - all input data is transposed and written up front (the
//     bbop_trsp_init pattern of the SIMDRAM interface);
//   - row allocation reuses Linear Scan Register Allocation
//     (Poletto–Sarkar) over full-width operand intervals; values that do
//     not fit are spilled to secondary storage at full width;
//   - constant operands are written by the CPU and buffered (no C-group
//     data reuse — the granularity mismatch the paper's Figure 7 shows);
//   - each multi-bit operation expands to a hand-quality micro-op routine
//     (within one operation the code is as tight as CHOPPER's — the
//     hands-tuned codes are expertly written), but no optimization crosses
//     operation boundaries.
package baseline

import (
	"fmt"

	"chopper/internal/alloc"
	"chopper/internal/bitslice"
	"chopper/internal/codegen"
	"chopper/internal/dfg"
	"chopper/internal/isa"
	"chopper/internal/logic"
	"chopper/internal/obs"
)

// Options configure baseline code generation.
type Options struct {
	Arch isa.Arch
	// DRows is the number of usable D-group rows per subarray.
	DRows int
}

// Stats summarizes the generated program.
type Stats struct {
	Writes, Reads     int
	SpilledValues     int
	SpilledRows       int
	OperandRows       int // linear-scan high-water mark
	ScratchRows       int // rows reserved for intra-op temporaries
	ConstWrites       int
	PerOpStats        codegen.Stats
	TotalInstructions int
}

// Result is a compiled baseline program plus host interface (same contract
// as codegen.Result).
type Result struct {
	Prog         *isa.Program
	InputTag     map[string]int
	OutputTag    map[string]int
	ConstPattern map[int]uint64
	Stats        Stats
}

// valueLoc locates one full-width value: rows or spill slots per bit.
type valueLoc struct {
	rows    []isa.Row
	slots   []int
	spilled bool
}

func (l *valueLoc) ext(bit int) codegen.ExtLoc {
	if l.spilled {
		return codegen.ExtLoc{Slot: l.slots[bit], Spilled: true}
	}
	return codegen.ExtLoc{Row: l.rows[bit]}
}

// Generate compiles the dataflow graph with the hands-tuned methodology.
func Generate(g *dfg.Graph, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Scratch region for intra-operation temporaries, sized to the widest
	// operation's internal pressure (a multiplier holds roughly two words
	// plus carry state).
	maxW := 1
	for i := range g.Values {
		if w := g.Values[i].Width; w > maxW {
			maxW = w
		}
	}
	scratch := 2*maxW + 16
	if scratch > opts.DRows/2 {
		scratch = opts.DRows / 2
	}
	if scratch < 8 {
		return nil, fmt.Errorf("baseline: %d D rows is too small", opts.DRows)
	}
	poolRows := opts.DRows - scratch

	// Live intervals at full operand width. Inputs are transposed and
	// written up front (bbop_trsp_init), so their intervals start at 0;
	// constant rows are CPU-written just before their first use (they are
	// still written and buffered at full width — Figure 7's cost — but a
	// hand-tuner would not park every constant for the whole program).
	lastUse := make([]int, len(g.Values))
	firstUse := make([]int, len(g.Values))
	for i := range g.Values {
		lastUse[i] = -1
		firstUse[i] = -1
		for _, a := range g.Values[i].Args {
			lastUse[a] = i
			if firstUse[a] < 0 {
				firstUse[a] = i
			}
		}
	}
	endPos := len(g.Values)
	for _, o := range g.Outputs {
		lastUse[o] = endPos
		if firstUse[o] < 0 {
			firstUse[o] = endPos
		}
	}
	var intervals []alloc.Interval
	for i := range g.Values {
		if lastUse[i] < 0 {
			continue // dead value
		}
		start := i
		switch g.Values[i].Kind {
		case dfg.OpInput:
			start = 0
		case dfg.OpConst:
			start = firstUse[i]
		}
		intervals = append(intervals, alloc.Interval{
			ID: i, Start: start, End: lastUse[i], Rows: g.Values[i].Width,
		})
	}
	scan := alloc.LinearScan(intervals, poolRows)

	res := &Result{
		InputTag:     make(map[string]int),
		OutputTag:    make(map[string]int),
		ConstPattern: make(map[int]uint64),
	}
	prog := &isa.Program{}
	st := &res.Stats
	st.ScratchRows = scratch
	st.OperandRows = scan.MaxRows
	st.SpilledValues = scan.Spilled
	st.SpilledRows = scan.SpillRows

	// Assign slots to spilled values.
	nextSlot := 0
	locs := make([]valueLoc, len(g.Values))
	for i := range g.Values {
		as, ok := scan.Assignments[i]
		if !ok {
			continue
		}
		if as.Spilled {
			w := g.Values[i].Width
			slots := make([]int, w)
			for b := range slots {
				slots[b] = nextSlot
				nextSlot++
			}
			locs[i] = valueLoc{slots: slots, spilled: true}
		} else {
			locs[i] = valueLoc{rows: as.Rows}
		}
	}

	stage := isa.Row(opts.DRows - 1) // staging row inside the scratch region
	nextTag := 0

	writeValue := func(i int) {
		v := &g.Values[i]
		l := &locs[i]
		for b := 0; b < v.Width; b++ {
			tag := nextTag
			nextTag++
			switch v.Kind {
			case dfg.OpInput:
				res.InputTag[fmt.Sprintf("%s[%d]", v.Name, b)] = tag
			case dfg.OpConst:
				pat := uint64(0)
				if v.Imm.Bit(b) == 1 {
					pat = ^uint64(0)
				}
				res.ConstPattern[tag] = pat
				st.ConstWrites++
			}
			if l.spilled {
				prog.Append(isa.NewWrite(stage, tag))
				prog.Append(isa.NewSpillOut(stage, uint64(l.slots[b])))
			} else {
				prog.Append(isa.NewWrite(l.rows[b], tag))
			}
			st.Writes++
		}
	}

	// Prolog: transpose-and-write every input at full width.
	for i := range g.Values {
		if lastUse[i] >= 0 && g.Values[i].Kind == dfg.OpInput {
			writeValue(i)
		}
	}
	constWritten := make([]bool, len(g.Values))

	// Operations in program order; constant rows are CPU-written right
	// before the first operation consuming them.
	for i := range g.Values {
		v := &g.Values[i]
		if lastUse[i] < 0 {
			continue
		}
		for _, a := range v.Args {
			if g.Values[a].Kind == dfg.OpConst && !constWritten[a] {
				writeValue(int(a))
				constWritten[a] = true
			}
		}
		switch v.Kind {
		case dfg.OpInput, dfg.OpConst:
			continue
		case dfg.OpShl, dfg.OpShr, dfg.OpResize:
			if err := emitRewire(prog, g, i, locs, stage, st); err != nil {
				return nil, err
			}
		default:
			ns, err := emitOp(prog, g, i, locs, opts, poolRows, scratch, nextSlot, st)
			if err != nil {
				return nil, err
			}
			nextSlot = ns
		}
	}

	// Epilog: read results back.
	readTag := 0
	for oi, o := range g.Outputs {
		v := &g.Values[o]
		l := &locs[o]
		for b := 0; b < v.Width; b++ {
			res.OutputTag[fmt.Sprintf("%s[%d]", g.OutputNames[oi], b)] = readTag
			if l.spilled {
				prog.Append(isa.NewSpillIn(stage, uint64(l.slots[b])))
				prog.Append(isa.NewRead(stage, readTag))
			} else {
				prog.Append(isa.NewRead(l.rows[b], readTag))
			}
			st.Reads++
			readTag++
		}
	}

	prog.SpillSlots = nextSlot
	prog.DRowsUsed = scan.MaxRows + scratch
	if err := prog.Validate(opts.DRows); err != nil {
		return nil, err
	}
	st.TotalInstructions = len(prog.Ops)
	res.Prog = prog
	return res, nil
}

// emitRewire handles shifts and resizes: in the multi-bit abstraction these
// are full-width row copies (bbop-style), zero-filling vacated positions.
func emitRewire(prog *isa.Program, g *dfg.Graph, vi int, locs []valueLoc, stage isa.Row, st *Stats) error {
	v := &g.Values[vi]
	src := &locs[v.Args[0]]
	dst := &locs[vi]
	srcW := g.Values[v.Args[0]].Width
	shift := 0
	switch v.Kind {
	case dfg.OpShl:
		shift = int(v.Imm.Int64())
	case dfg.OpShr:
		shift = -int(v.Imm.Int64())
	}
	for b := 0; b < v.Width; b++ {
		sb := b - shift
		// Move source bit sb (or constant zero) into destination bit b.
		var from isa.Row
		switch {
		case sb < 0 || sb >= srcW:
			from = isa.C0
		case src.spilled:
			prog.Append(isa.NewSpillIn(stage, uint64(src.slots[sb])))
			from = stage
		default:
			from = src.rows[sb]
		}
		if dst.spilled {
			if from != stage {
				prog.Append(isa.NewAAP(from, stage))
				st.PerOpStats.AAPs++
			}
			prog.Append(isa.NewSpillOut(stage, uint64(dst.slots[b])))
		} else {
			prog.Append(isa.NewAAP(from, dst.rows[b]))
			st.PerOpStats.AAPs++
		}
	}
	return nil
}

// emitOp expands one multi-bit operation into its hand-quality micro-op
// routine by synthesizing the operation's logic net in isolation (operands
// opaque, so no cross-operand or constant folding — the multi-bit
// granularity barrier) and generating code with the operands bound to their
// full-width rows.
func emitOp(prog *isa.Program, g *dfg.Graph, vi int, locs []valueLoc, opts Options, poolRows, scratch, slotBase int, st *Stats) (int, error) {
	v := &g.Values[vi]

	// Build the single-op graph.
	sub := &dfg.Graph{}
	extIn := make(map[string]codegen.ExtLoc)
	for ai, a := range v.Args {
		av := &g.Values[a]
		name := fmt.Sprintf("in%d", ai)
		sub.Values = append(sub.Values, dfg.Value{Kind: dfg.OpInput, Width: av.Width, Name: name})
		sub.Inputs = append(sub.Inputs, dfg.ValueID(ai))
		for b := 0; b < av.Width; b++ {
			extIn[fmt.Sprintf("%s[%d]", name, b)] = locs[a].ext(b)
		}
	}
	opv := dfg.Value{Kind: v.Kind, Width: v.Width, Imm: v.Imm}
	for ai := range v.Args {
		opv.Args = append(opv.Args, dfg.ValueID(ai))
	}
	sub.Values = append(sub.Values, opv)
	sub.Outputs = []dfg.ValueID{dfg.ValueID(len(sub.Values) - 1)}
	sub.OutputNames = []string{"out"}
	if err := sub.Validate(); err != nil {
		return 0, fmt.Errorf("baseline: op %d (%s): %w", vi, v.Kind, err)
	}

	net, err := bitslice.Lower(sub, bitslice.Options{Fold: true})
	if err != nil {
		return 0, err
	}
	leg, err := logic.Legalize(net, opts.Arch, logic.BuilderOptions{Fold: true, CSE: true})
	if err != nil {
		return 0, err
	}
	leg = leg.DCE()

	extOut := make(map[string]codegen.ExtLoc, v.Width)
	for b := 0; b < v.Width; b++ {
		extOut[fmt.Sprintf("out[%d]", b)] = locs[vi].ext(b)
	}
	res, err := codegen.Generate(leg, codegen.Options{
		Arch:     opts.Arch,
		Variant:  obs.Rename, // hands-tuned quality within one operation
		DRows:    scratch,
		PoolBase: poolRows,
		SlotBase: slotBase,
		ExtIn:    extIn,
		ExtOut:   extOut,
	})
	if err != nil {
		return 0, fmt.Errorf("baseline: op %d (%s): %w", vi, v.Kind, err)
	}
	prog.Append(res.Prog.Ops...)
	s := &st.PerOpStats
	s.AAPs += res.Stats.AAPs
	s.APs += res.Stats.APs
	s.SpillOuts += res.Stats.SpillOuts
	s.SpillIns += res.Stats.SpillIns
	s.Writes += res.Stats.Writes
	return res.NextSlot, nil
}
