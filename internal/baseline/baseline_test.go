package baseline

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"chopper/internal/dfg"
	"chopper/internal/dram"
	"chopper/internal/dsl"
	"chopper/internal/isa"
	"chopper/internal/sim"
	"chopper/internal/typecheck"
)

func buildGraph(t *testing.T, src string) *dfg.Graph {
	t.Helper()
	prog, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Build(ch)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runBaseline executes a baseline program functionally (all lanes identical)
// and compares against the dataflow evaluator.
func runBaseline(t *testing.T, g *dfg.Graph, res *Result, arch isa.Arch, dRows int, inputs map[string]*big.Int) {
	t.Helper()
	io := &sim.HostIO{
		WriteData: func(tag int) []uint64 {
			for name, tg := range res.InputTag {
				if tg != tag {
					continue
				}
				// name is "base[bit]".
				var base string
				var bit int
				if _, err := fmt.Sscanf(name, "%s", &base); err != nil {
					t.Fatal(err)
				}
				idx := -1
				for i := len(name) - 1; i >= 0; i-- {
					if name[i] == '[' {
						idx = i
						break
					}
				}
				base = name[:idx]
				fmt.Sscanf(name[idx+1:len(name)-1], "%d", &bit)
				if inputs[base].Bit(bit) == 1 {
					return []uint64{^uint64(0)}
				}
				return []uint64{0}
			}
			if pat, ok := res.ConstPattern[tag]; ok {
				return []uint64{pat}
			}
			return nil
		},
	}
	gotBits := make(map[int]uint64)
	io.ReadSink = func(tag int, data []uint64) { gotBits[tag] = data[0] }

	geom := dram.DefaultGeometry()
	geom.RowsPerSub = dRows + geom.ReservedRows
	if _, err := sim.RunProgram(res.Prog, arch, geom, 64, io); err != nil {
		t.Fatalf("run: %v", err)
	}

	want, err := g.Eval(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, tag := range res.OutputTag {
		idx := -1
		for i := len(name) - 1; i >= 0; i-- {
			if name[i] == '[' {
				idx = i
				break
			}
		}
		base := name[:idx]
		var bit int
		fmt.Sscanf(name[idx+1:len(name)-1], "%d", &bit)
		wantBit := want[base].Bit(bit)
		got := gotBits[tag]
		if got != 0 && got != ^uint64(0) {
			t.Fatalf("output %s lanes disagree: %#x", name, got)
		}
		var gotBit uint
		if got == ^uint64(0) {
			gotBit = 1
		}
		if gotBit != wantBit {
			t.Fatalf("output %s = %d, want %d", name, gotBit, wantBit)
		}
	}
}

const mixedSrc = `
node main(a: u8, b: u8) returns (z: u8, c: u1)
vars s: u8, d: u8;
let
  s = a + b;
  d = s - 3;
  z = mux(a < b, d, s ^ b);
  c = d >= 100;
tel`

func TestBaselineCorrectAllArchs(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	rng := rand.New(rand.NewSource(1))
	for _, arch := range isa.AllArchs {
		res, err := Generate(g, Options{Arch: arch, DRows: 1006})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		for trial := 0; trial < 5; trial++ {
			in := map[string]*big.Int{
				"a": big.NewInt(rng.Int63n(256)),
				"b": big.NewInt(rng.Int63n(256)),
			}
			runBaseline(t, g, res, arch, 1006, in)
		}
	}
}

func TestBaselineShiftsAndResize(t *testing.T) {
	g := buildGraph(t, `
node main(a: u8) returns (z: u16)
vars w: u16;
let
  w = u16(a >> 2);
  z = (w << 3) + 5;
tel`)
	res, err := Generate(g, Options{Arch: isa.Ambit, DRows: 1006})
	if err != nil {
		t.Fatal(err)
	}
	runBaseline(t, g, res, isa.Ambit, 1006, map[string]*big.Int{"a": big.NewInt(0xC7)})
}

func TestBaselineWritesConstantsUpfront(t *testing.T) {
	g := buildGraph(t, "node main(a: u8) returns (z: u8) let z = a + 42; tel")
	res, err := Generate(g, Options{Arch: isa.Ambit, DRows: 1006})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ConstWrites != 8 {
		t.Errorf("const writes = %d, want 8 (full-width constant)", res.Stats.ConstWrites)
	}
	// Input writes all precede the first compute op (bbop_trsp_init style).
	firstCompute := -1
	lastWrite := -1
	for i := range res.Prog.Ops {
		switch res.Prog.Ops[i].Kind {
		case isa.OpWrite:
			lastWrite = i
		case isa.OpAP:
			if firstCompute < 0 {
				firstCompute = i
			}
		}
	}
	if firstCompute >= 0 && lastWrite > firstCompute {
		t.Error("baseline interleaved writes with computation")
	}
}

func TestBaselineSpillsFullWidth(t *testing.T) {
	// Many live 32-bit values in 100 data rows force full-width spilling.
	g := buildGraph(t, `
node main(a: u32, b: u32, c: u32, d: u32) returns (z: u32)
vars t1: u32, t2: u32, t3: u32, t4: u32;
let
  t1 = a + b;
  t2 = c + d;
  t3 = a ^ d;
  t4 = t1 + t2;
  z = t4 + t3;
tel`)
	res, err := Generate(g, Options{Arch: isa.Ambit, DRows: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledValues == 0 {
		t.Fatal("no values spilled with 150 rows and 9 32-bit values")
	}
	if res.Stats.SpilledRows%32 != 0 {
		t.Errorf("spilled rows = %d, not a multiple of the operand width", res.Stats.SpilledRows)
	}
	// Still correct.
	rng := rand.New(rand.NewSource(2))
	in := map[string]*big.Int{
		"a": big.NewInt(rng.Int63n(1 << 32)), "b": big.NewInt(rng.Int63n(1 << 32)),
		"c": big.NewInt(rng.Int63n(1 << 32)), "d": big.NewInt(rng.Int63n(1 << 32)),
	}
	runBaseline(t, g, res, isa.Ambit, 150, in)
}

func TestBaselineRejectsTinySubarray(t *testing.T) {
	g := buildGraph(t, "node main(a: u8) returns (z: u8) let z = a + 1; tel")
	if _, err := Generate(g, Options{Arch: isa.Ambit, DRows: 10}); err == nil {
		t.Error("10-row subarray accepted")
	}
}

func TestBaselineProgramValidates(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	res, err := Generate(g, Options{Arch: isa.SIMDRAM, DRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Prog.Validate(500); err != nil {
		t.Error(err)
	}
	if res.Prog.DRowsUsed == 0 {
		t.Error("no row usage recorded")
	}
}

func TestBaselineRewireWithSpilledOperands(t *testing.T) {
	// Enough 32-bit values that linear scan spills some; the shifted
	// value's rewiring must go through the staging row and stay correct.
	g := buildGraph(t, `
node main(a: u32, b: u32, c: u32) returns (z: u32)
vars t1: u32, t2: u32, t3: u32, t4: u32;
let
  t1 = a + b;
  t2 = b + c;
  t3 = t1 << 5;
  t4 = t2 >> 3;
  z = u32(t3 ^ t4) + a;
tel`)
	res, err := Generate(g, Options{Arch: isa.Ambit, DRows: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledValues == 0 {
		t.Skip("allocation fit; spill-path rewiring not exercised at this size")
	}
	in := map[string]*big.Int{
		"a": big.NewInt(0x1234ABCD), "b": big.NewInt(0x0F0F0F0F), "c": big.NewInt(0xCAFE1234),
	}
	runBaseline(t, g, res, isa.Ambit, 120, in)
}

func TestBaselineConstWrittenJustInTime(t *testing.T) {
	// The constant row's WRITE must appear after the input prolog, right
	// before its consuming operation — not at program start.
	g := buildGraph(t, `
node main(a: u8, b: u8) returns (z: u8)
vars t: u8;
let
  t = a + b;
  z = t + 42;
tel`)
	res, err := Generate(g, Options{Arch: isa.Ambit, DRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	constTags := map[int]bool{}
	for tag := range res.ConstPattern {
		constTags[tag] = true
	}
	firstConstWrite, firstAP := -1, -1
	for i, op := range res.Prog.Ops {
		switch {
		case op.Kind == isa.OpWrite && constTags[op.Tag] && firstConstWrite < 0:
			firstConstWrite = i
		case op.Kind == isa.OpAP && firstAP < 0:
			firstAP = i
		}
	}
	if firstConstWrite < 0 {
		t.Fatal("no constant write emitted")
	}
	if firstConstWrite < firstAP {
		t.Errorf("constant written at op %d, before any computation (op %d): not just-in-time", firstConstWrite, firstAP)
	}
}
