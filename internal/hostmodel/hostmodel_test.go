package hostmodel

import "testing"

func TestMachinesValid(t *testing.T) {
	for _, m := range []Machine{Skylake(), TitanV()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := Machine{MemBWGBs: -1}
	if err := bad.Validate(); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestRooflineRegimes(t *testing.T) {
	m := Skylake()
	// Memory-bound: lots of bytes, few ops.
	memBound := m.TimeNs(1e9, 1)
	// Compute-bound: few bytes, lots of ops.
	cmpBound := m.TimeNs(1, 1e12)
	wantMem := 1e9 / (m.MemBWGBs * m.Efficiency)
	if memBound < wantMem {
		t.Errorf("memory-bound time %.0f below bandwidth bound %.0f", memBound, wantMem)
	}
	wantCmp := 1e12 / (m.GopsPerSec * m.Efficiency)
	if cmpBound < wantCmp {
		t.Errorf("compute-bound time %.0f below throughput bound %.0f", cmpBound, wantCmp)
	}
}

func TestGPUFasterThanCPUOnStreaming(t *testing.T) {
	c := Cost{Bytes: 4e9, Ops: 1e9}
	cpu := Skylake().TimeNsFor(c)
	gpu := TitanV().TimeNsFor(c)
	if gpu >= cpu {
		t.Errorf("GPU (%.0f) not faster than CPU (%.0f) on a streaming workload", gpu, cpu)
	}
	// The ratio should be in the bandwidth-ratio ballpark (~7x), not 1000x.
	if r := cpu / gpu; r < 3 || r > 15 {
		t.Errorf("GPU/CPU ratio %.1f outside the bandwidth-ratio ballpark", r)
	}
}

func TestLaunchOverheadDominatesTinyWork(t *testing.T) {
	m := TitanV()
	tiny := m.TimeNs(64, 64)
	if tiny < m.LaunchOverheadNs {
		t.Errorf("tiny kernel (%.0f ns) below launch overhead", tiny)
	}
}

func TestTimeMonotonic(t *testing.T) {
	m := Skylake()
	if m.TimeNs(2e9, 0) <= m.TimeNs(1e9, 0) {
		t.Error("time not monotonic in bytes")
	}
	if m.TimeNs(0, 2e12) <= m.TimeNs(0, 1e12) {
		t.Error("time not monotonic in ops")
	}
}

func TestValidateRejectsNegativeOverhead(t *testing.T) {
	m := Skylake()
	m.LaunchOverheadNs = -1
	if err := m.Validate(); err == nil {
		t.Error("negative launch overhead accepted")
	}
}

func TestTimeNsCheckedZeroValue(t *testing.T) {
	var m Machine
	if _, err := m.TimeNsChecked(1e6, 1e6); err == nil {
		t.Error("zero-value machine produced a time instead of an error")
	}
	got, err := Skylake().TimeNsChecked(1e6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if want := Skylake().TimeNs(1e6, 1e6); got != want {
		t.Errorf("checked time %g != unchecked %g", got, want)
	}
}

func TestTransferValidate(t *testing.T) {
	if err := DefaultTransfer().Validate(); err != nil {
		t.Error(err)
	}
	if err := (Transfer{ChannelBWGBs: 0, DMASetupNs: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Transfer{ChannelBWGBs: 19.2, DMASetupNs: -1}).Validate(); err == nil {
		t.Error("negative DMA setup accepted")
	}
}

func TestTransferTimeNs(t *testing.T) {
	tr := Transfer{ChannelBWGBs: 10, DMASetupNs: 100}
	if got := tr.TimeNs(0, 4); got != 0 {
		t.Errorf("zero bytes cost %g ns, want 0", got)
	}
	// 1000 bytes over one 10 GB/s (= 10 B/ns) channel: 100 ns wire + setup.
	if got, want := tr.TimeNs(1000, 1), 200.0; got != want {
		t.Errorf("one channel: %g ns, want %g", got, want)
	}
	// Four channels stream four times as fast; setup is paid once.
	if got, want := tr.TimeNs(1000, 4), 125.0; got != want {
		t.Errorf("four channels: %g ns, want %g", got, want)
	}
	// Channel counts below one behave as one.
	if tr.TimeNs(1000, 0) != tr.TimeNs(1000, 1) {
		t.Error("channels=0 not clamped to 1")
	}
}
