package hostmodel

import "testing"

func TestMachinesValid(t *testing.T) {
	for _, m := range []Machine{Skylake(), TitanV()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := Machine{MemBWGBs: -1}
	if err := bad.Validate(); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestRooflineRegimes(t *testing.T) {
	m := Skylake()
	// Memory-bound: lots of bytes, few ops.
	memBound := m.TimeNs(1e9, 1)
	// Compute-bound: few bytes, lots of ops.
	cmpBound := m.TimeNs(1, 1e12)
	wantMem := 1e9 / (m.MemBWGBs * m.Efficiency)
	if memBound < wantMem {
		t.Errorf("memory-bound time %.0f below bandwidth bound %.0f", memBound, wantMem)
	}
	wantCmp := 1e12 / (m.GopsPerSec * m.Efficiency)
	if cmpBound < wantCmp {
		t.Errorf("compute-bound time %.0f below throughput bound %.0f", cmpBound, wantCmp)
	}
}

func TestGPUFasterThanCPUOnStreaming(t *testing.T) {
	c := Cost{Bytes: 4e9, Ops: 1e9}
	cpu := Skylake().TimeNsFor(c)
	gpu := TitanV().TimeNsFor(c)
	if gpu >= cpu {
		t.Errorf("GPU (%.0f) not faster than CPU (%.0f) on a streaming workload", gpu, cpu)
	}
	// The ratio should be in the bandwidth-ratio ballpark (~7x), not 1000x.
	if r := cpu / gpu; r < 3 || r > 15 {
		t.Errorf("GPU/CPU ratio %.1f outside the bandwidth-ratio ballpark", r)
	}
}

func TestLaunchOverheadDominatesTinyWork(t *testing.T) {
	m := TitanV()
	tiny := m.TimeNs(64, 64)
	if tiny < m.LaunchOverheadNs {
		t.Errorf("tiny kernel (%.0f ns) below launch overhead", tiny)
	}
}

func TestTimeMonotonic(t *testing.T) {
	m := Skylake()
	if m.TimeNs(2e9, 0) <= m.TimeNs(1e9, 0) {
		t.Error("time not monotonic in bytes")
	}
	if m.TimeNs(0, 2e12) <= m.TimeNs(0, 1e12) {
		t.Error("time not monotonic in ops")
	}
}
