// Package hostmodel provides analytic (roofline-style) execution-time
// models for the two real machines the paper compares against: the Intel
// Skylake multi-core CPU and the NVIDIA TITAN V GPU of Table I.
//
// The paper measures these baselines on real hardware running tuned
// software (PyTorch, LevelWT, hand-tuned kernels). That hardware is not
// available here, so — per the reproduction's substitution policy — each
// machine is modeled as the max of its memory-traffic time and its
// compute time, with an efficiency factor representing how well tuned
// software approaches peak. The CPU serves as the normalization
// denominator of every figure, so what matters is that its throughput is
// stable and in the right regime (memory-bound for these streaming
// workloads), not cycle-exact.
package hostmodel

import "fmt"

// Machine is an analytic machine model.
type Machine struct {
	Name string
	// MemBWGBs is sustained memory bandwidth in GB/s.
	MemBWGBs float64
	// GopsPerSec is sustained element-operation throughput in Gop/s
	// (SIMD integer ops across all cores/SMs).
	GopsPerSec float64
	// Efficiency derates both peaks for real tuned software.
	Efficiency float64
	// LaunchOverheadNs is fixed per-invocation overhead (kernel launch,
	// thread pool wake-up).
	LaunchOverheadNs float64
}

// Skylake returns the Table I CPU: 8-core out-of-order x86 at 4 GHz with
// 4-channel DDR4-2400 (76.8 GB/s peak). Compute peak assumes AVX2 integer
// lanes: 8 cores x 32 B/cycle x 4 GHz = 1024 Gop/s on byte elements.
func Skylake() Machine {
	return Machine{
		Name:             "Skylake-8c",
		MemBWGBs:         76.8,
		GopsPerSec:       1024,
		Efficiency:       0.65,
		LaunchOverheadNs: 2_000,
	}
}

// TitanV returns the Table I GPU: 5120 CUDA cores at 1.2 GHz with HBM2
// (652.8 GB/s). Compute peak 5120 x 1.2 GHz = 6144 Gop/s on word
// elements.
func TitanV() Machine {
	return Machine{
		Name:             "TITAN-V",
		MemBWGBs:         652.8,
		GopsPerSec:       6144,
		Efficiency:       0.55,
		LaunchOverheadNs: 10_000,
	}
}

// Validate rejects degenerate models.
func (m Machine) Validate() error {
	if m.MemBWGBs <= 0 || m.GopsPerSec <= 0 || m.Efficiency <= 0 || m.Efficiency > 1 {
		return fmt.Errorf("hostmodel: bad machine %+v", m)
	}
	return nil
}

// TimeNs estimates the execution time of a workload touching `bytes` of
// memory and performing `ops` element operations.
func (m Machine) TimeNs(bytes, ops float64) float64 {
	memNs := bytes / (m.MemBWGBs * m.Efficiency) // GB/s == B/ns
	cmpNs := ops / (m.GopsPerSec * m.Efficiency)
	t := memNs
	if cmpNs > t {
		t = cmpNs
	}
	return t + m.LaunchOverheadNs
}

// Cost describes a workload's host-side resource demands.
type Cost struct {
	Bytes float64 // memory traffic (reads + writes)
	Ops   float64 // element operations
}

// TimeNsFor is TimeNs over a Cost.
func (m Machine) TimeNsFor(c Cost) float64 { return m.TimeNs(c.Bytes, c.Ops) }
