// Package hostmodel provides analytic (roofline-style) execution-time
// models for the host side of the system: the two real machines the paper
// compares against (the Intel Skylake multi-core CPU and the NVIDIA
// TITAN V GPU of Table I) and the host<->DRAM transfer path that moves a
// PUD workload's inputs and outputs over the memory channels (Transfer).
//
// The paper measures these baselines on real hardware running tuned
// software (PyTorch, LevelWT, hand-tuned kernels). That hardware is not
// available here, so — per the reproduction's substitution policy — each
// machine is modeled as the max of its memory-traffic time and its
// compute time, with an efficiency factor representing how well tuned
// software approaches peak. The CPU serves as the normalization
// denominator of every figure, so what matters is that its throughput is
// stable and in the right regime (memory-bound for these streaming
// workloads), not cycle-exact.
package hostmodel

import "fmt"

// Machine is an analytic machine model.
type Machine struct {
	Name string
	// MemBWGBs is sustained memory bandwidth in GB/s.
	MemBWGBs float64
	// GopsPerSec is sustained element-operation throughput in Gop/s
	// (SIMD integer ops across all cores/SMs).
	GopsPerSec float64
	// Efficiency derates both peaks for real tuned software.
	Efficiency float64
	// LaunchOverheadNs is fixed per-invocation overhead (kernel launch,
	// thread pool wake-up).
	LaunchOverheadNs float64
}

// Skylake returns the Table I CPU: 8-core out-of-order x86 at 4 GHz with
// 4-channel DDR4-2400 (76.8 GB/s peak). Compute peak assumes AVX2 integer
// lanes: 8 cores x 32 B/cycle x 4 GHz = 1024 Gop/s on byte elements.
func Skylake() Machine {
	return Machine{
		Name:             "Skylake-8c",
		MemBWGBs:         76.8,
		GopsPerSec:       1024,
		Efficiency:       0.65,
		LaunchOverheadNs: 2_000,
	}
}

// TitanV returns the Table I GPU: 5120 CUDA cores at 1.2 GHz with HBM2
// (652.8 GB/s). Compute peak 5120 x 1.2 GHz = 6144 Gop/s on word
// elements.
func TitanV() Machine {
	return Machine{
		Name:             "TITAN-V",
		MemBWGBs:         652.8,
		GopsPerSec:       6144,
		Efficiency:       0.55,
		LaunchOverheadNs: 10_000,
	}
}

// Validate rejects degenerate models: non-positive peaks, an efficiency
// outside (0, 1], or a negative launch overhead (which would let a model
// report negative times for small workloads).
func (m Machine) Validate() error {
	if m.MemBWGBs <= 0 || m.GopsPerSec <= 0 || m.Efficiency <= 0 || m.Efficiency > 1 {
		return fmt.Errorf("hostmodel: bad machine %+v", m)
	}
	if m.LaunchOverheadNs < 0 {
		return fmt.Errorf("hostmodel: negative launch overhead %g ns in machine %q", m.LaunchOverheadNs, m.Name)
	}
	return nil
}

// TimeNs estimates the execution time of a workload touching `bytes` of
// memory and performing `ops` element operations. The machine must be
// valid (Validate); a zero-value Machine divides by zero here, which is
// why every entry point that accepts a Machine from outside the package
// goes through TimeNsChecked instead.
func (m Machine) TimeNs(bytes, ops float64) float64 {
	memNs := bytes / (m.MemBWGBs * m.Efficiency) // GB/s == B/ns
	cmpNs := ops / (m.GopsPerSec * m.Efficiency)
	t := memNs
	if cmpNs > t {
		t = cmpNs
	}
	return t + m.LaunchOverheadNs
}

// TimeNsChecked is TimeNs behind Validate: a degenerate machine (e.g. the
// zero value, whose peaks divide to NaN/Inf) surfaces as an error instead
// of a nonsense figure.
func (m Machine) TimeNsChecked(bytes, ops float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return m.TimeNs(bytes, ops), nil
}

// Cost describes a workload's host-side resource demands.
type Cost struct {
	Bytes float64 // memory traffic (reads + writes)
	Ops   float64 // element operations
}

// TimeNsFor is TimeNs over a Cost.
func (m Machine) TimeNsFor(c Cost) float64 { return m.TimeNs(c.Bytes, c.Ops) }

// Transfer models the host<->DRAM DMA path that scatters a tiled
// workload's inputs into the subarrays and gathers its outputs back: a
// per-channel sustained bandwidth plus a fixed per-DMA setup cost
// (descriptor build, doorbell, completion interrupt). Channels move data
// independently, so an n-channel device streams at n times the
// per-channel bandwidth while paying the setup once per DMA direction.
type Transfer struct {
	// ChannelBWGBs is the sustained host<->DRAM bandwidth of one channel
	// in GB/s.
	ChannelBWGBs float64
	// DMASetupNs is the fixed per-DMA overhead in nanoseconds.
	DMASetupNs float64
}

// DefaultTransfer returns the evaluation default: one DDR4-2400 channel's
// 19.2 GB/s, with a 600 ns DMA setup (descriptor programming plus
// completion signalling, the order of a host round trip).
func DefaultTransfer() Transfer {
	return Transfer{ChannelBWGBs: 19.2, DMASetupNs: 600}
}

// Validate rejects degenerate transfer models.
func (t Transfer) Validate() error {
	if t.ChannelBWGBs <= 0 {
		return fmt.Errorf("hostmodel: non-positive channel bandwidth %g GB/s", t.ChannelBWGBs)
	}
	if t.DMASetupNs < 0 {
		return fmt.Errorf("hostmodel: negative DMA setup %g ns", t.DMASetupNs)
	}
	return nil
}

// TimeNs returns the time to move `bytes` over `channels` parallel
// channels: one DMA setup plus the streaming time at the aggregate
// bandwidth. Zero bytes cost zero (no DMA is issued); channel counts
// below one are treated as one.
func (t Transfer) TimeNs(bytes float64, channels int) float64 {
	if bytes <= 0 {
		return 0
	}
	if channels < 1 {
		channels = 1
	}
	return t.DMASetupNs + bytes/(t.ChannelBWGBs*float64(channels)) // GB/s == B/ns
}
