package chopper_test

// Determinism of the parallel bitslicing path at the full-compiler level:
// repeated compiles of a many-component workload must emit byte-identical
// programs regardless of worker scheduling, and must match a compile that
// is forced onto the serial path (a cache-carrying compile). CI runs this
// under -race with -cpu 1,4.

import (
	"fmt"
	"sync"
	"testing"

	"chopper"
	"chopper/internal/workloads"
)

// TestDeterminismParallelCompile compiles DiffGen-64 (128 independent DFG
// components, the workload that actually engages parallel lowering) many
// times concurrently and requires every emitted program to be identical.
func TestDeterminismParallelCompile(t *testing.T) {
	spec, ok := workloads.Get("DiffGen-64")
	if !ok {
		t.Fatal("unknown workload DiffGen-64")
	}
	for _, opt := range []chopper.OptLevel{chopper.OptBitslice, chopper.OptFull} {
		t.Run(fmt.Sprint(opt), func(t *testing.T) {
			ref, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.Ambit}.WithOpt(opt))
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Prog().Format()

			// A cache-carrying compile takes the serial path; its output
			// must agree with the parallel one.
			serial, err := chopper.Compile(spec.Src, chopper.Options{
				Target: chopper.Ambit,
				Cache:  chopper.NewKernelCache(4),
			}.WithOpt(opt))
			if err != nil {
				t.Fatal(err)
			}
			if got := serial.Prog().Format(); got != want {
				t.Fatal("serial (cached) compile differs from parallel compile")
			}

			var wg sync.WaitGroup
			errs := make([]error, 8)
			for i := range errs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					k, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.Ambit}.WithOpt(opt))
					if err != nil {
						errs[i] = err
						return
					}
					if got := k.Prog().Format(); got != want {
						errs[i] = fmt.Errorf("compile %d produced a different program (%d vs %d bytes)", i, len(got), len(want))
					}
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
