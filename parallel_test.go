package chopper

import (
	"reflect"
	"runtime"
	"testing"
)

// The determinism contract of the parallel execution layer: every verify /
// reliability entry point must produce byte-identical results at any
// worker count, because each trial derives its randomness from (seed,
// trial) alone and the pool reports the lowest failing index. CI runs
// these under `-cpu 1,4` and `-race`.

const detSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

func detWorkerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

func TestDeterminismVerifyAcrossWorkers(t *testing.T) {
	k, err := Compile(detSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range detWorkerCounts() {
		if err := k.VerifyParallel(10, 33, w); err != nil {
			t.Errorf("workers=%d: %v", w, err)
		}
	}
}

func TestDeterminismVerifyUnderFaultAcrossWorkers(t *testing.T) {
	// A guaranteed single TRA fault corrupts the unhardened adder; the
	// reported failure (lowest failing trial, exact message) must not
	// depend on the worker count.
	k, err := Compile(detSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := FaultConfig{TRAFlipRate: 1, MaxFaults: 1}
	ref := k.VerifyUnderFaultParallel(8, 17, cfg, 1)
	if ref == nil {
		t.Fatal("unhardened kernel survived guaranteed faults (test is vacuous)")
	}
	for _, w := range detWorkerCounts() {
		for rep := 0; rep < 3; rep++ {
			err := k.VerifyUnderFaultParallel(8, 17, cfg, w)
			if err == nil || err.Error() != ref.Error() {
				t.Fatalf("workers=%d rep=%d: error %q, want %q", w, rep, err, ref)
			}
		}
	}

	// The hardened build survives at every worker count.
	hard, err := Compile(detSrc, Options{Harden: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range detWorkerCounts() {
		if err := hard.VerifyUnderFaultParallel(8, 17, cfg, w); err != nil {
			t.Errorf("hardened, workers=%d: %v", w, err)
		}
	}
}

func TestDeterminismReliabilityAcrossWorkers(t *testing.T) {
	k, err := Compile(detSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []FaultConfig{
		{},
		{TRAFlipRate: 0.3},
		{TRAFlipRate: 1, MaxFaults: 1},
	}
	ref, err := k.ReliabilityParallel(6, 41, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range detWorkerCounts() {
		rep, err := k.ReliabilityParallel(6, 41, cfgs, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(ref, rep) {
			t.Errorf("workers=%d: report diverged from 1-worker reference:\n1: %+v\n%d: %+v", w, ref, w, rep)
		}
	}
}

func TestDeterminismRunTiled(t *testing.T) {
	// Tiles execute in parallel; gathered outputs must match a repeat run
	// and the per-lane RunWide reference.
	k, err := Compile(detSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lanes := k.Opts.Geometry.Bitlines() + 100 // 2 tiles, second partial
	in := map[string][][]uint64{"a": make([][]uint64, lanes), "b": make([][]uint64, lanes)}
	for l := 0; l < lanes; l++ {
		in["a"][l] = []uint64{uint64(l*7) % 256}
		in["b"][l] = []uint64{uint64(l*13) % 256}
	}
	r1, err := k.RunTiled(in, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tiles != 2 {
		t.Fatalf("expected 2 tiles, got %d", r1.Tiles)
	}
	r2, err := k.RunTiled(in, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Outputs, r2.Outputs) {
		t.Fatal("repeat RunTiled diverged")
	}
	if r1.TimeNs != r2.TimeNs || r1.Stats != r2.Stats {
		t.Fatal("repeat RunTiled timing diverged")
	}
	for l := 0; l < lanes; l++ {
		want := (in["a"][l][0] + in["b"][l][0]) % 256
		if got := r1.Outputs["s"][l][0]; got != want {
			t.Fatalf("lane %d: s=%d want %d", l, got, want)
		}
	}
}
