package chopper

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"chopper/internal/transpose"
	"chopper/internal/workloads"
)

// batchLaneSchedule varies member lane counts across the 64-bit word
// boundary, like the verify sweep does, so span masking bugs cannot hide
// behind whole-word members.
var batchLaneSchedule = []int{64, 1, 63, 65, 128, 7}

// paperWorkloadSources returns the first configuration of each of the
// four Table II domains: DenseNet-16, WTC-64, DiffGen-64, SW-64.
func paperWorkloadSources() []workloads.Spec {
	var specs []workloads.Spec
	for _, d := range workloads.Domains {
		specs = append(specs, workloads.Build(d, workloads.Configs[d][0]))
	}
	return specs
}

func batchMembersFor(k *Kernel, n int, seed int64) []LaneBatch {
	members := make([]LaneBatch, n)
	for i := range members {
		lanes := batchLaneSchedule[i%len(batchLaneSchedule)]
		rng := rand.New(rand.NewSource(seed + int64(i)))
		inWide := randWideInputs(rng, k.Inputs, lanes)
		rows := make(map[string][][]uint64, len(k.Inputs))
		for _, in := range k.Inputs {
			rows[in.Name] = transpose.ToVerticalWide(inWide[in.Name], in.Width, lanes)
		}
		members[i] = LaneBatch{Rows: rows, Lanes: lanes}
	}
	return members
}

func sameRows(a, b map[string][][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ra := range a {
		rb, ok := b[name]
		if !ok || len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if len(ra[i]) != len(rb[i]) {
				return false
			}
			for j := range ra[i] {
				if ra[i][j] != rb[i][j] {
					return false
				}
			}
		}
	}
	return true
}

// TestBatchByteIdentityPaperWorkloads pins the coalesced pass's core
// contract on all four paper workloads: at batch sizes 1, 2, 7 and 16
// (chopperd's CI max-batch), every member's output rows, simulated time
// and engine counters are byte-identical to a solo run of the same
// operands.
func TestBatchByteIdentityPaperWorkloads(t *testing.T) {
	for _, spec := range paperWorkloadSources() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			k, err := Compile(spec.Src, Options{Target: Ambit})
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 2, 7, 16} {
				members := batchMembersFor(k, size, int64(size)*1000+7)
				solo := make([]*RunResult, size)
				for i, m := range members {
					r, err := k.RunRows(m.Rows, m.Lanes)
					if err != nil {
						t.Fatalf("size %d solo member %d: %v", size, i, err)
					}
					solo[i] = r
				}
				batched, err := k.RunRowsBatch(members)
				if err != nil {
					t.Fatalf("size %d batched: %v", size, err)
				}
				for i := range members {
					if !sameRows(solo[i].Rows, batched[i].Rows) {
						t.Errorf("size %d member %d: output rows differ from solo run", size, i)
					}
					if solo[i].TimeNs != batched[i].TimeNs {
						t.Errorf("size %d member %d: TimeNs %v != solo %v", size, i, batched[i].TimeNs, solo[i].TimeNs)
					}
					if solo[i].Stats != batched[i].Stats {
						t.Errorf("size %d member %d: engine stats differ from solo run", size, i)
					}
				}
			}
		})
	}
}

// TestBatchRunOutputsMatchSolo checks the horizontal (Run-shaped) entry
// point: operands transposed directly into the shared arena come back as
// the same per-lane outputs a solo Run produces.
func TestBatchRunOutputsMatchSolo(t *testing.T) {
	k, err := Compile("node main(a: u8, b: u8) returns (z: u8) let z = a * b + a; tel", Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	var reqs []BatchRun
	for i := 0; i < 7; i++ {
		lanes := batchLaneSchedule[i%len(batchLaneSchedule)]
		in := map[string][]uint64{"a": make([]uint64, lanes), "b": make([]uint64, lanes)}
		for l := 0; l < lanes; l++ {
			in["a"][l] = rng.Uint64() & 0xFF
			in["b"][l] = rng.Uint64() & 0xFF
		}
		reqs = append(reqs, BatchRun{Inputs: in, Lanes: lanes})
	}
	outs, results, err := k.RunBatchCtx(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		want, err := k.Run(r.Inputs, r.Lanes)
		if err != nil {
			t.Fatal(err)
		}
		for name, wv := range want {
			gv := outs[i][name]
			if len(gv) != len(wv) {
				t.Fatalf("member %d output %q: %d lanes, want %d", i, name, len(gv), len(wv))
			}
			for l := range wv {
				if gv[l] != wv[l] {
					t.Errorf("member %d output %q lane %d: %d != solo %d", i, name, l, gv[l], wv[l])
				}
			}
		}
		if results[i].TimeNs <= 0 {
			t.Errorf("member %d: no simulated time", i)
		}
	}
}

// TestBatchVerifyMatchesSolo checks that a coalesced verification sweep
// reports exactly what each solo sweep reports — for passing kernels and
// for a sabotaged kernel, message for message.
func TestBatchVerifyMatchesSolo(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel"
	specs := []VerifySpec{{Trials: 3, Seed: 11}, {Trials: 5, Seed: 7}, {Trials: 1, Seed: 3}, {Trials: 2, Seed: 11}}

	k, err := Compile(src, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	perSpec, err := k.VerifyBatchCtx(nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		want := k.VerifyCtx(nil, sp.Trials, sp.Seed, 1)
		if (perSpec[i] == nil) != (want == nil) {
			t.Errorf("member %d: batched %v, solo %v", i, perSpec[i], want)
		}
	}

	// Sabotage one control-row copy so verification fails, then require
	// the batched sweep to report the identical discrepancy per member.
	sabotaged := false
	for i := range k.prog.Ops {
		op := &k.prog.Ops[i]
		if op.Kind == 0 /* AAP */ && op.Src.IsCGroup() && !sabotaged {
			if op.Src.String() == "C0" {
				op.Src = op.Src - 1
				sabotaged = true
			}
		}
	}
	if !sabotaged {
		t.Skip("no control-row copy to sabotage")
	}
	// Invalidate the cached pre-decoded stream after tampering.
	k.decodeOnce = sync.Once{}
	k.decoded = nil
	perSpec, err = k.VerifyBatchCtx(nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		want := k.VerifyCtx(nil, sp.Trials, sp.Seed, 1)
		switch {
		case want == nil && perSpec[i] == nil:
		case want == nil || perSpec[i] == nil:
			t.Errorf("member %d: batched %v, solo %v", i, perSpec[i], want)
		case perSpec[i].Error() != want.Error():
			t.Errorf("member %d:\n  batched: %v\n  solo:    %v", i, perSpec[i], want)
		}
	}
}

// TestBatchBudgetStopMatchesSolo: the budget checkpoints count per
// micro-op, not per word, so a coalesced pass trips at exactly the point
// a solo run trips, with the same sentinel error.
func TestBatchBudgetStopMatchesSolo(t *testing.T) {
	k, err := Compile("node main(a: u8, b: u8) returns (z: u8) let z = a * b + a; tel",
		Options{Target: Ambit, Budget: Budget{MaxSimSteps: 10}})
	if err != nil {
		t.Fatal(err)
	}
	members := batchMembersFor(k, 3, 5)
	_, soloErr := k.RunRows(members[0].Rows, members[0].Lanes)
	if soloErr == nil {
		t.Fatal("solo run within a 10-step budget: want a budget stop")
	}
	_, batchErr := k.RunRowsBatch(members)
	if batchErr == nil {
		t.Fatal("batched run within a 10-step budget: want a budget stop")
	}
	if soloErr.Error() != batchErr.Error() {
		t.Errorf("budget stops differ:\n  solo:    %v\n  batched: %v", soloErr, batchErr)
	}
	if ErrorClass(batchErr) != "budget" {
		t.Errorf("batched stop classifies as %q, want budget", ErrorClass(batchErr))
	}
}

// TestBatchRejectsRecoveryKernels: epoch recovery checkpoints a single
// request's subarray; multi-member passes must refuse it up front.
func TestBatchRejectsRecoveryKernels(t *testing.T) {
	k, err := Compile("node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel",
		Options{Target: Ambit, Recovery: Recovery{Detector: DetectorParity}})
	if err != nil {
		t.Fatal(err)
	}
	members := batchMembersFor(k, 2, 1)
	if _, err := k.RunRowsBatch(members); err == nil {
		t.Error("multi-member batch accepted a recovery-enabled kernel")
	} else if ErrorClass(err) != "options" {
		t.Errorf("recovery rejection classifies as %q, want options", ErrorClass(err))
	}
	// A single-member batch is a solo run and keeps recovery support.
	if _, err := k.RunRowsBatch(members[:1]); err != nil {
		t.Errorf("single-member batch on a recovery kernel: %v", err)
	}
}

// TestDeterminismBatchPass: the coalesced pass is a pure function of its
// members — repeated passes are byte-identical (CI runs this under
// -race -cpu 1,4).
func TestDeterminismBatchPass(t *testing.T) {
	k, err := Compile("node main(a: u8, b: u8) returns (z: u8) let z = (a ^ b) & (a | b); tel", Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	members := batchMembersFor(k, 7, 42)
	first, err := k.RunRowsBatch(members)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := k.RunRowsBatch(batchMembersFor(k, 7, 42))
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if !sameRows(first[i].Rows, again[i].Rows) || first[i].TimeNs != again[i].TimeNs || first[i].Stats != again[i].Stats {
				t.Fatalf("rep %d member %d: coalesced pass not deterministic", rep, i)
			}
		}
	}
}

// TestBatchOversizedRejected: combined lanes beyond one row's bitlines
// must be refused — a coalesced pass is one device pass, not a tiling.
func TestBatchOversizedRejected(t *testing.T) {
	k, err := Compile("node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel", Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	bl := k.Opts.Geometry.Bitlines()
	members := []LaneBatch{
		{Rows: batchMembersFor(k, 1, 1)[0].Rows, Lanes: bl},
		batchMembersFor(k, 1, 2)[0],
	}
	// The first member's rows only cover its generated lanes, but lane
	// validation happens before operand pasting, so the oversize reject
	// fires first.
	if _, err := k.RunRowsBatch(members); err == nil {
		t.Error("batch beyond one row's bitlines was accepted")
	} else if !strings.Contains(err.Error(), "bitlines") {
		t.Errorf("unexpected error: %v", err)
	}
}
