package chopper

import (
	"strings"
	"testing"
)

// FuzzCompile drives arbitrary source through the full pipeline (parse,
// typecheck, normalize, codegen). The contract under fuzzing is the
// robustness invariant of the public API: Compile returns an error or a
// kernel — it never panics, whatever the input. The recover guards convert
// any internal panic into an ErrInternal error, and the parser's recursion
// depth limit keeps hostile nesting from overflowing the stack (which Go
// could not recover).
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"node main(a: u8, b: u8) returns (s: u8) let s = a + b; tel",
		"node main(a: u8, b: u8) returns (s: u8, d: u8) let s = a + b; d = a - b; tel",
		"node main(a: u16) returns (z: u16) vars t: u16; let t = a * a; z = t ^ a; tel",
		"node main(a: u8, b: u8, p: u1) returns (c: u8) let c = p ? a : b; tel",
		"node main(a: u8) returns (z: u8) let z = mux(a < 3:u8, a, ~a); tel",
		"node main(a: u8 returns",
		"node main() returns () tel",
		"node node node ((((",
		"let tel vars returns",
		strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000),
		"node main(a: u8) returns (z: u8) let z = " + strings.Repeat("~", 3000) + "a; tel",
		"node main(a: u128, b: u128) returns (z: u128) let z = a + b; tel",
		"\x00\xff\xfe garbage \x80",
		// A 32-bit multiply lowers to thousands of gates: known to blow
		// the small gate budget below, exercising the ErrBudget path.
		"node main(a: u32, b: u32) returns (z: u32) let z = a * b; tel",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, opts := range []Options{
			{Target: Ambit},
			{Target: ELP2IM, Harden: true},
			// A tight guard budget: inputs that compile at all now also
			// exercise the deterministic budget-exceeded paths (net-gates
			// at bit-slicing/legalization, micro-ops during emission).
			{Target: Ambit, Budget: Budget{MaxNetGates: 256, MaxMicroOps: 1024}},
			// Recovery combos: normalization/validation and the epoch-mark
			// plumbing must hold for arbitrary programs.
			{Target: Ambit, Recovery: Recovery{Detector: DetectorParity, EpochUops: 8}},
			{Target: SIMDRAM, Harden: true, Recovery: Recovery{Detector: DetectorVote, MaxRetries: -1}},
		} {
			k, err := Compile(src, opts)
			if err == nil && k == nil {
				t.Fatalf("Compile returned neither kernel nor error for %q", src)
			}
			if err != nil && k != nil {
				t.Fatalf("Compile returned both kernel and error for %q: %v", src, err)
			}
		}
	})
}

// FuzzRecoveryEquivalence checks the recovery layer's zero-fault identity
// on arbitrary programs: with no faults injected, a recovery-enabled run
// must produce byte-identical outputs to a recovery-disabled run of the
// same kernel (the detector observes, buffers and charges timing, but the
// functional result is untouched).
func FuzzRecoveryEquivalence(f *testing.F) {
	seeds := []string{
		"node main(a: u8, b: u8) returns (s: u8) let s = a + b; tel",
		"node main(a: u8, b: u8, p: u1) returns (c: u8) let c = p ? a : b; tel",
		"node main(a: u16) returns (z: u16) vars t: u16; let t = a * a; z = t ^ a; tel",
		"node main(a: u8) returns (z: u8) let z = mux(a < 3:u8, a, ~a); tel",
	}
	for _, s := range seeds {
		f.Add(s, 3)
	}
	f.Fuzz(func(t *testing.T, src string, epochUops int) {
		plain, err := Compile(src, Options{Target: Ambit})
		if err != nil {
			t.Skip()
		}
		const lanes = 8
		in := make(map[string][]uint64, len(plain.Inputs))
		for _, spec := range plain.Inputs {
			if spec.Width > 64 {
				t.Skip()
			}
			vals := make([]uint64, lanes)
			mask := ^uint64(0)
			if spec.Width < 64 {
				mask = (uint64(1) << uint(spec.Width)) - 1
			}
			for l := range vals {
				vals[l] = (uint64(l)*0x9e3779b9 + 7) & mask
			}
			in[spec.Name] = vals
		}
		want, err := plain.Run(in, lanes)
		if err != nil {
			t.Skip()
		}
		epochUops &= 511 // non-negative: covers stride 0 (default) through tiny epochs
		for _, det := range []Detector{DetectorParity, DetectorVote} {
			k, err := Compile(src, Options{Target: Ambit,
				Recovery: Recovery{Detector: det, EpochUops: epochUops}})
			if err != nil {
				t.Fatalf("recovery options broke compilation: %v", err)
			}
			got, err := k.Run(in, lanes)
			if err != nil {
				t.Fatalf("%s: recovered run failed where plain run succeeded: %v", det, err)
			}
			for name, w := range want {
				if len(got[name]) != len(w) {
					t.Fatalf("%s: output %q length differs", det, name)
				}
				for l := range w {
					if got[name][l] != w[l] {
						t.Fatalf("%s: output %q lane %d = %#x, want %#x", det, name, l, got[name][l], w[l])
					}
				}
			}
		}
	})
}
