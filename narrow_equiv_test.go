package chopper

// End-to-end checks of precision-adaptive compilation: narrowed kernels
// must verify bit-identically against the original graph's reference
// semantics on every paper workload and architecture, narrowing=off must
// be byte-identical to a default compile, and a fuzz target cross-checks
// narrow-on vs narrow-off lowering on generated graphs.

import (
	"reflect"
	"testing"

	"chopper/internal/narrow"
	"chopper/internal/workloads"
)

// TestNarrowedWorkloadsVerify compiles every paper workload with safe-mode
// narrowing on every architecture, checks the pass actually engaged
// (report present, live bits below declared bits), and verifies the
// narrowed program bit-exactly against the original graph's Eval.
func TestNarrowedWorkloadsVerify(t *testing.T) {
	// DenseNet and WTC have provable slack (reassociable popcount sums,
	// range-bounded partition cuts) and must strictly shrink; DiffGen and
	// SW are already width-tight, so the bar there is "never worse".
	mustShrink := map[string]bool{"DenseNet-16": true, "WTC-64": true}
	for _, wl := range []string{"DenseNet-16", "WTC-64", "DiffGen-64", "SW-64"} {
		spec, ok := workloads.Get(wl)
		if !ok {
			t.Fatalf("unknown workload %q", wl)
		}
		t.Run(wl, func(t *testing.T) {
			for _, arch := range []Target{Ambit, ELP2IM, SIMDRAM} {
				base, err := Compile(spec.Src, Options{Target: arch})
				if err != nil {
					t.Fatalf("%v: base compile: %v", arch, err)
				}
				k, err := Compile(spec.Src, Options{Target: arch, Narrow: NarrowSafe})
				if err != nil {
					t.Fatalf("%v: narrow compile: %v", arch, err)
				}
				if k.Narrow == nil {
					t.Fatalf("%v: narrowing fell back (Kernel.Narrow == nil)", arch)
				}
				if k.Narrow.LiveBits >= k.Narrow.DeclaredBits {
					t.Errorf("%v: live bits %d not below declared %d",
						arch, k.Narrow.LiveBits, k.Narrow.DeclaredBits)
				}
				u0, u1 := len(base.Prog().Ops), len(k.Prog().Ops)
				if u1 > u0 {
					t.Errorf("%v: narrowing grew the program: %d -> %d uops", arch, u0, u1)
				}
				if mustShrink[wl] && u1 >= u0 {
					t.Errorf("%v: narrowing did not shrink program: %d -> %d uops", arch, u0, u1)
				}
				t.Logf("%v: uops %d -> %d (%.1f%% saved), bits %d -> %d",
					arch, u0, u1, 100*(1-float64(u1)/float64(u0)),
					k.Narrow.DeclaredBits, k.Narrow.LiveBits)
				if err := k.Verify(2, int64(arch)+2000); err != nil {
					t.Fatalf("%v: narrowed kernel failed verification: %v", arch, err)
				}
			}
		})
	}
}

// TestNarrowOffByteIdentical pins the off switch: compiling with
// NarrowOff (the default) must produce a program byte-identical to one
// compiled without mentioning narrowing at all.
func TestNarrowOffByteIdentical(t *testing.T) {
	spec, _ := workloads.Get("SW-64")
	for _, arch := range []Target{Ambit, ELP2IM, SIMDRAM} {
		k0, err := Compile(spec.Src, Options{Target: arch})
		if err != nil {
			t.Fatal(err)
		}
		k1, err := Compile(spec.Src, Options{Target: arch, Narrow: NarrowOff})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(k0.Prog(), k1.Prog()) {
			t.Errorf("%v: NarrowOff program differs from default compile", arch)
		}
		if k1.Narrow != nil {
			t.Errorf("%v: NarrowOff kernel carries a narrow report", arch)
		}
	}
}

// TestAnnotatedNarrowing checks the @range path end to end: annotations
// tighten inputs beyond what safe mode can prove, verification draws
// in-range operands, and out-of-contract annotations are compile errors.
func TestAnnotatedNarrowing(t *testing.T) {
	src := `
@range(a, 0, 100)
@range(b, 0, 50)
node main(a: u16, b: u16) returns (z: u16)
let z = a * b + a;
tel`
	safe, err := Compile(src, Options{Narrow: NarrowSafe})
	if err != nil {
		t.Fatal(err)
	}
	ann, err := Compile(src, Options{Narrow: NarrowAnnotated})
	if err != nil {
		t.Fatal(err)
	}
	if ann.Narrow == nil || safe.Narrow == nil {
		t.Fatal("narrow report missing")
	}
	if ann.Narrow.LiveBits >= safe.Narrow.LiveBits {
		t.Errorf("annotations did not tighten: annotated %d live bits, safe %d",
			ann.Narrow.LiveBits, safe.Narrow.LiveBits)
	}
	// a*b+a <= 100*50+100 = 5100 < 2^13: the annotated product must fit
	// well below the declared 16 bits.
	if err := ann.Verify(3, 11); err != nil {
		t.Fatalf("annotated kernel failed verification: %v", err)
	}

	// Safe mode must ignore annotations entirely.
	if got, want := safe.Narrow.Mode, NarrowSafe; got != want {
		t.Errorf("mode = %v, want %v", got, want)
	}

	for _, bad := range []string{
		"@range(c, 0, 1)\nnode main(a: u8) returns (z: u8) let z = a; tel",                  // unknown name
		"@range(a, 7, 3)\nnode main(a: u8) returns (z: u8) let z = a; tel",                  // lo > hi
		"@range(a, 0, 300)\nnode main(a: u8) returns (z: u8) let z = a; tel",                // hi too wide
		"@range(a, 0, 1)\n@range(a, 0, 2)\nnode main(a: u8) returns (z: u8) let z = a; tel", // duplicate
	} {
		if _, err := Compile(bad, Options{}); err == nil {
			t.Errorf("bad annotation accepted: %q", bad)
		}
	}
}

// FuzzNarrowEquivalence is the cross-layer equivalence harness: for a
// generated well-typed graph, compiling with narrowing off and on must
// agree — both verify against the same reference semantics, across the
// lane schedule (1, 63, 64, 65 and 128 lanes).
func FuzzNarrowEquivalence(f *testing.F) {
	// Seeds biased toward the rewrite's edge cases: signed shifts and
	// compares, resize chains, shift-amount clamps.
	f.Add([]byte{})
	f.Add([]byte("sra-signed-compare"))
	f.Add([]byte{0x0f, 0xff, 0x00, 0x10, 0x80, 0x7f, 0x01, 0x02})
	f.Add([]byte("X)27071900)0C78"))                                          // historical narrow.Run soundness regression
	f.Add([]byte{0x1d, 0x1d, 0x1d, 0x1d, 0x1d, 0x1d, 0x1d, 0x1d, 0x1d, 0x1d}) // resize-heavy
	f.Fuzz(func(t *testing.T, data []byte) {
		g, ranges := narrow.GenGraph(data)
		off, errOff := CompileGraph(g, Options{})
		on, errOn := CompileGraph(g, Options{Narrow: NarrowSafe})
		if (errOff == nil) != (errOn == nil) {
			t.Fatalf("compile disagreement: off=%v on=%v", errOff, errOn)
		}
		if errOff != nil {
			t.Skip()
		}
		_ = ranges // annotated ranges only flow through the DSL front end
		// Five trials walk the whole verification lane schedule:
		// 64, 1, 63, 65 and 128 lanes.
		if err := off.Verify(5, 5); err != nil {
			// The baseline lowering is the oracle for the graph itself;
			// if it cannot verify, the graph (not narrowing) is at fault.
			t.Fatalf("baseline kernel failed verification: %v", err)
		}
		if err := on.Verify(5, 5); err != nil {
			t.Fatalf("narrowed kernel failed verification: %v", err)
		}
	})
}
