package chopper

// Batched execution: several independent requests against the same kernel
// ride ONE simulated device pass. Bit-serial PUD execution makes this
// exact, not approximate — every micro-op acts bitwise per lane, so
// packing request operands into disjoint, word-aligned lane spans of a
// shared arena and running the program once produces, per request, the
// same output bits, the same simulated time and the same engine counters
// as running each request alone (the op stream, and therefore the timing
// replay and every budget checkpoint, does not depend on the lane count).
// This is the amortization SIMDRAM identifies for bit-serial PUD: the
// fixed per-pass work — transposition and timing replay — is paid once
// for N requests. chopperd's internal/serve batcher is the main client.

import (
	"context"
	"math/rand"

	"chopper/internal/transpose"
)

// BatchRun is one member of a coalesced run: operands one value per lane
// (widths up to 64 bits), exactly like Kernel.Run.
type BatchRun struct {
	Inputs map[string][]uint64
	Lanes  int
}

// LaneBatch is one member of a coalesced run over operands already in
// vertical (bit-row) layout, exactly like Kernel.RunRows.
type LaneBatch struct {
	Rows  map[string][][]uint64
	Lanes int
}

// VerifySpec is one member of a coalesced verification sweep: the
// (trials, seed) pair Kernel.Verify takes. Trial inputs and lane counts
// derive from the pair alone, so a batched sweep is reproducible.
type VerifySpec struct {
	Trials int
	Seed   int64
}

// VerifySpanWords reports how many 64-bit arena words a coalesced
// verification sweep of `trials` trials occupies — the sum over trials
// of the words their scheduled lane counts need. Admission-side batchers
// use it to keep a batch's combined lanes within one row's bitlines
// without knowing the trial schedule.
func VerifySpanWords(trials int) int {
	w := 0
	for t := 0; t < trials; t++ {
		w += transpose.Words(verifyLaneSchedule[t%len(verifyLaneSchedule)])
	}
	return w
}

// laneSpan is one member's word-aligned slice of the shared arena.
type laneSpan struct {
	off   int    // word offset into every combined row
	words int    // transpose.Words(lanes)
	lanes int    // the member's SIMD width
	mask  uint64 // last-word mask for the member's lane count
}

func laneMaskFor(lanes int) uint64 {
	if r := lanes % 64; r != 0 {
		return (uint64(1) << uint(r)) - 1
	}
	return ^uint64(0)
}

// laneSpans lays members out word-aligned and returns the combined lane
// count: the last member's lanes end the arena, so the simulator's
// global tail mask coincides with the last member's mask.
func laneSpans(counts []int) ([]laneSpan, int) {
	spans := make([]laneSpan, len(counts))
	off := 0
	for i, lanes := range counts {
		spans[i] = laneSpan{off: off, words: transpose.Words(lanes), lanes: lanes, mask: laneMaskFor(lanes)}
		off += spans[i].words
	}
	last := spans[len(spans)-1]
	return spans, (last.off+last.words-1)*64 + (last.lanes-1)%64 + 1
}

// checkBatchable rejects kernel configurations a coalesced pass cannot
// honor: epoch recovery checkpoints one request's subarray state and has
// no per-member rollback story, and the combined lanes must fit one
// physical row — a coalesced pass is one device pass, not a tiling.
func (k *Kernel) checkBatchable(totalLanes int) error {
	if k.Opts.Recovery.Enabled() {
		return optionsErrf("recovery (detector %s) is single-subarray only; batched execution does not support it", k.Opts.Recovery.Detector)
	}
	if bl := k.Opts.Geometry.Bitlines(); totalLanes > bl {
		return optionsErrf("batch needs %d lanes, exceeding the %d bitlines of one row; split the batch", totalLanes, bl)
	}
	return nil
}

// RunRowsBatch executes every member in one simulated device pass over a
// shared arena (see RunRowsBatchCtx).
func (k *Kernel) RunRowsBatch(batches []LaneBatch) (res []*RunResult, err error) {
	defer recoverToError(&err)
	return k.runRowsBatch(nil, batches)
}

// RunRowsBatchCtx packs the members' vertical operand rows into disjoint
// word-aligned lane spans of one arena, runs the kernel ONCE over the
// combined lanes, and demultiplexes each member's output rows and stats.
// Per member the outputs, simulated time and engine counters are byte-
// identical to a solo RunRowsCtx call (ScratchBytes reflects the shared
// arena and is the one field that grows with the batch). A single-member
// batch delegates to the solo path outright.
func (k *Kernel) RunRowsBatchCtx(ctx context.Context, batches []LaneBatch) (res []*RunResult, err error) {
	defer recoverToError(&err)
	return k.runRowsBatch(ctx, batches)
}

func (k *Kernel) runRowsBatch(ctx context.Context, batches []LaneBatch) ([]*RunResult, error) {
	if len(batches) == 0 {
		return nil, optionsErrf("empty batch")
	}
	for i, b := range batches {
		if b.Lanes <= 0 {
			return nil, optionsErrf("batch member %d: lanes must be positive, have %d", i, b.Lanes)
		}
	}
	if len(batches) == 1 {
		r, err := k.runRows(ctx, batches[0].Rows, batches[0].Lanes, nil)
		if err != nil {
			return nil, err
		}
		return []*RunResult{r}, nil
	}
	counts := make([]int, len(batches))
	for i, b := range batches {
		counts[i] = b.Lanes
	}
	spans, total := laneSpans(counts)
	if err := k.checkBatchable(total); err != nil {
		return nil, err
	}
	words := transpose.Words(total)

	combined := make(map[string][][]uint64, len(k.Inputs))
	for _, in := range k.Inputs {
		rows := make([][]uint64, in.Width)
		backing := make([]uint64, in.Width*words)
		for b := range rows {
			rows[b], backing = backing[:words], backing[words:]
		}
		combined[in.Name] = rows
	}
	for i, b := range batches {
		for _, in := range k.Inputs {
			src, ok := b.Rows[in.Name]
			if !ok {
				return nil, optionsErrf("batch member %d: missing input operand %q", i, in.Name)
			}
			if len(src) < in.Width {
				return nil, optionsErrf("batch member %d: input %q has %d bit-rows, kernel needs %d", i, in.Name, len(src), in.Width)
			}
			transpose.PasteRows(combined[in.Name], spans[i].off, src[:in.Width], b.Lanes)
		}
	}

	res, err := k.runRows(ctx, combined, total, nil)
	if err != nil {
		return nil, err
	}
	return demuxResults(res, spans), nil
}

// demuxResults slices each member's lane span out of the combined output
// rows. The span's tail word is masked to the member's lane count — the
// solo path's global tail mask, applied at the member's own boundary —
// so padding lanes from neighbors (constant-pattern bits land there)
// never leak into a member's rows. Spans are disjoint, so masking in
// place on the shared backing is safe.
func demuxResults(res *RunResult, spans []laneSpan) []*RunResult {
	out := make([]*RunResult, len(spans))
	for i, sp := range spans {
		rows := make(map[string][][]uint64, len(res.Rows))
		for name, rs := range res.Rows {
			sub := make([][]uint64, len(rs))
			for b := range rs {
				w := rs[b][sp.off : sp.off+sp.words]
				w[sp.words-1] &= sp.mask
				sub[b] = w
			}
			rows[name] = sub
		}
		out[i] = &RunResult{
			Rows:         rows,
			TimeNs:       res.TimeNs,
			Stats:        res.Stats,
			ScratchBytes: res.ScratchBytes,
		}
	}
	return out
}

// RunBatch is RunBatchCtx without a context.
func (k *Kernel) RunBatch(reqs []BatchRun) (outs []map[string][]uint64, res []*RunResult, err error) {
	return k.RunBatchCtx(nil, reqs)
}

// RunBatchCtx executes N independent Run-shaped requests in one
// simulated device pass: one transpose into a shared arena (each
// member's operands land directly in its lane span), one program
// execution, one timing replay. Outputs and per-member results are
// byte-identical to solo Kernel.Run calls; see RunRowsBatchCtx for the
// guarantee. Operand widths are limited to 64 bits, like Kernel.Run.
func (k *Kernel) RunBatchCtx(ctx context.Context, reqs []BatchRun) (outs []map[string][]uint64, res []*RunResult, err error) {
	defer recoverToError(&err)
	if len(reqs) == 0 {
		return nil, nil, optionsErrf("empty batch")
	}
	counts := make([]int, len(reqs))
	for i, r := range reqs {
		if r.Lanes <= 0 {
			return nil, nil, optionsErrf("batch member %d: lanes must be positive, have %d", i, r.Lanes)
		}
		counts[i] = r.Lanes
	}
	spans, total := laneSpans(counts)
	if len(reqs) > 1 {
		if err := k.checkBatchable(total); err != nil {
			return nil, nil, err
		}
	}
	words := transpose.Words(total)

	combined := make(map[string][][]uint64, len(k.Inputs))
	for _, in := range k.Inputs {
		if in.Width > 64 {
			return nil, nil, optionsErrf("input %q is %d bits wide; RunBatch handles up to 64 (use RunRowsBatch)", in.Name, in.Width)
		}
		rows := make([][]uint64, in.Width)
		backing := make([]uint64, in.Width*words)
		for b := range rows {
			rows[b], backing = backing[:words], backing[words:]
		}
		combined[in.Name] = rows
	}
	for i, r := range reqs {
		for _, in := range k.Inputs {
			vals, ok := r.Inputs[in.Name]
			if !ok {
				return nil, nil, optionsErrf("batch member %d: missing input %q", i, in.Name)
			}
			if len(vals) != r.Lanes {
				return nil, nil, optionsErrf("batch member %d: input %q has %d values, want one per lane (%d)", i, in.Name, len(vals), r.Lanes)
			}
			transpose.ToVerticalInto(combined[in.Name], spans[i].off, vals, in.Width, r.Lanes)
		}
	}
	for _, o := range k.Outputs {
		if o.Width > 64 {
			return nil, nil, optionsErrf("output %q is %d bits wide; RunBatch handles up to 64 (use RunRowsBatch)", o.Name, o.Width)
		}
	}

	combinedRes, err := k.runRows(ctx, combined, total, nil)
	if err != nil {
		return nil, nil, err
	}
	res = demuxResults(combinedRes, spans)
	outs = make([]map[string][]uint64, len(reqs))
	for i := range reqs {
		out := make(map[string][]uint64, len(k.Outputs))
		for _, o := range k.Outputs {
			out[o.Name] = transpose.FromVertical(res[i].Rows[o.Name], o.Width, reqs[i].Lanes)
		}
		outs[i] = out
	}
	return outs, res, nil
}

// VerifyBatch is VerifyBatchCtx without a context.
func (k *Kernel) VerifyBatch(specs []VerifySpec) (perSpec []error, err error) {
	return k.VerifyBatchCtx(nil, specs)
}

// VerifyBatchCtx coalesces N independent verification sweeps into ONE
// simulated device pass. Every (spec, trial) pair expands into a lane
// span — the trial's inputs and lane count derive from (seed, trial)
// exactly as in VerifyCtx — the program runs once over the combined
// lanes, and each trial's outputs are compared against the reference
// dataflow evaluation. perSpec[i] is what a solo VerifyCtx(trials_i,
// seed_i, 1) call would return for member i: nil, or the ErrVerify-
// classed discrepancy from its lowest failing trial. The second return
// is a pass-level failure (budget, cancellation, malformed batch) that
// applies to every member — the same program and budget would stop a
// solo run at the identical point.
func (k *Kernel) VerifyBatchCtx(ctx context.Context, specs []VerifySpec) (perSpec []error, err error) {
	defer recoverToError(&err)
	if len(specs) == 0 {
		return nil, optionsErrf("empty verify batch")
	}
	for i, sp := range specs {
		if sp.Trials <= 0 {
			return nil, optionsErrf("verify batch member %d: trials must be positive, have %d", i, sp.Trials)
		}
	}
	if len(specs) == 1 {
		return []error{k.VerifyCtx(ctx, specs[0].Trials, specs[0].Seed, 1)}, nil
	}

	// Expand (spec, trial) pairs into lane spans.
	type trialRef struct {
		spec   int
		trial  int
		lanes  int
		inWide map[string][][]uint64
	}
	var refs []trialRef
	var counts []int
	for si, sp := range specs {
		for t := 0; t < sp.Trials; t++ {
			lanes := verifyLaneSchedule[t%len(verifyLaneSchedule)]
			rng := rand.New(rand.NewSource(trialSeed(sp.Seed, t)))
			inWide := randWideInputs(rng, k.Inputs, lanes)
			k.clampAnnotated(inWide)
			refs = append(refs, trialRef{spec: si, trial: t, lanes: lanes, inWide: inWide})
			counts = append(counts, lanes)
		}
	}
	spans, total := laneSpans(counts)
	if err := k.checkBatchable(total); err != nil {
		return nil, err
	}
	words := transpose.Words(total)

	combined := make(map[string][][]uint64, len(k.Inputs))
	for _, in := range k.Inputs {
		rows := make([][]uint64, in.Width)
		backing := make([]uint64, in.Width*words)
		for b := range rows {
			rows[b], backing = backing[:words], backing[words:]
		}
		combined[in.Name] = rows
	}
	for ri, ref := range refs {
		for _, in := range k.Inputs {
			src := transpose.ToVerticalWide(ref.inWide[in.Name], in.Width, ref.lanes)
			transpose.PasteRows(combined[in.Name], spans[ri].off, src, ref.lanes)
		}
	}

	res, err := k.runRows(ctx, combined, total, nil)
	if err != nil {
		return nil, err
	}

	perSpec = make([]error, len(specs))
	for ri, ref := range refs {
		if perSpec[ref.spec] != nil {
			// refs are ordered by ascending trial within a spec, so the
			// recorded error is the lowest failing trial's — the solo
			// worker=1 sweep's stopping point.
			continue
		}
		sp := spans[ri]
		got := make(map[string][][]uint64, len(k.Outputs))
		for _, o := range k.Outputs {
			rows := res.Rows[o.Name]
			sub := make([][]uint64, len(rows))
			for b := range rows {
				w := rows[b][sp.off : sp.off+sp.words]
				w[sp.words-1] &= sp.mask
				sub[b] = w
			}
			got[o.Name] = transpose.FromVerticalWide(sub, o.Width, ref.lanes)
		}
		perSpec[ref.spec] = k.compareTrial(ref.trial, ref.inWide, got, ref.lanes)
	}
	return perSpec, nil
}
