package chopper_test

// The golden-equivalence suite for the dense-index middle-end rewrite:
// every program the rewritten compiler emits must be byte-for-byte
// identical to what the frozen pre-change snapshot (internal/seedcompile)
// emits for the same graph, across targets, optimization levels,
// hardening, budget truncation, and the degradation ladder. The fast path
// is allowed to change how the answer is computed, never the answer.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"chopper"
	"chopper/internal/obs"
	"chopper/internal/seedcompile"
	seedobs "chopper/internal/seedcompile/obs"
	"chopper/internal/workloads"
)

// goldenWorkloads is the compared set: the perfbench Table II subset, one
// workload per paper domain.
var goldenWorkloads = []string{"DenseNet-16", "WTC-64", "DiffGen-64", "SW-64"}

var goldenTargets = []chopper.Target{chopper.Ambit, chopper.ELP2IM, chopper.SIMDRAM}

var goldenOpts = []chopper.OptLevel{chopper.OptBitslice, chopper.OptSchedule, chopper.OptReuse, chopper.OptFull}

// seedCompile runs the frozen pipeline on the kernel's own graph with the
// kernel's effective configuration, at the given optimization level.
func seedCompile(k *chopper.Kernel, opt chopper.OptLevel) (*seedcompile.Result, error) {
	return seedcompile.Compile(k.Graph, seedcompile.Options{
		Arch:        k.Opts.Target,
		Opt:         seedobs.Variant(int(opt)),
		DRows:       k.Opts.Geometry.DRows(),
		Harden:      k.Opts.Harden,
		MaxNetGates: k.Opts.Budget.MaxNetGates,
		MaxMicroOps: k.Opts.Budget.MaxMicroOps,
	})
}

// assertGolden fails unless the kernel and the seed result are identical:
// same program bytes, same row/slot accounting, same host ABI tags, and
// the same legalized net underneath.
func assertGolden(t *testing.T, k *chopper.Kernel, seed *seedcompile.Result) {
	t.Helper()
	got, want := k.Prog(), seed.Code.Prog
	if g, w := got.Format(), want.Format(); g != w {
		i := 0
		for i < len(g) && i < len(w) && g[i] == w[i] {
			i++
		}
		t.Fatalf("program text diverges from seed at byte %d (len %d vs %d):\n fast: %.80q\n seed: %.80q",
			i, len(g), len(w), g[max(0, i-40):], w[max(0, i-40):])
	}
	if got.DRowsUsed != want.DRowsUsed || got.SpillSlots != want.SpillSlots {
		t.Fatalf("row/slot accounting diverges: DRowsUsed %d/%d, SpillSlots %d/%d",
			got.DRowsUsed, want.DRowsUsed, got.SpillSlots, want.SpillSlots)
	}
	if !reflect.DeepEqual(k.Code.InputTag, seed.Code.InputTag) {
		t.Fatalf("InputTag diverges:\n fast: %v\n seed: %v", k.Code.InputTag, seed.Code.InputTag)
	}
	if !reflect.DeepEqual(k.Code.OutputTag, seed.Code.OutputTag) {
		t.Fatalf("OutputTag diverges:\n fast: %v\n seed: %v", k.Code.OutputTag, seed.Code.OutputTag)
	}
	if len(k.Code.ConstPattern) != 0 || len(seed.Code.ConstPattern) != 0 {
		if !reflect.DeepEqual(k.Code.ConstPattern, seed.Code.ConstPattern) {
			t.Fatalf("ConstPattern diverges:\n fast: %v\n seed: %v", k.Code.ConstPattern, seed.Code.ConstPattern)
		}
	}
	if g, w := fmt.Sprint(k.Net.Gates), fmt.Sprint(seed.Net.Gates); g != w {
		t.Fatalf("legalized net diverges: %d vs %d gates", len(k.Net.Gates), len(seed.Net.Gates))
	}
	if g, w := fmt.Sprint(k.Net.Inputs, k.Net.InputNames, k.Net.Outputs, k.Net.OutputNames),
		fmt.Sprint(seed.Net.Inputs, seed.Net.InputNames, seed.Net.Outputs, seed.Net.OutputNames); g != w {
		t.Fatalf("legalized net interface diverges:\n fast: %s\n seed: %s", g, w)
	}
}

// TestGoldenSeedEquivalence compares the emitted program on every
// workload × target × optimization level of the paper's breakdown ladder.
func TestGoldenSeedEquivalence(t *testing.T) {
	for _, wl := range goldenWorkloads {
		spec, ok := workloads.Get(wl)
		if !ok {
			t.Fatalf("unknown workload %q", wl)
		}
		for _, arch := range goldenTargets {
			for _, opt := range goldenOpts {
				t.Run(fmt.Sprintf("%s/%s/%s", wl, arch, opt), func(t *testing.T) {
					k, err := chopper.Compile(spec.Src, chopper.Options{Target: arch}.WithOpt(opt))
					if err != nil {
						t.Fatal(err)
					}
					seed, err := seedCompile(k, opt)
					if err != nil {
						t.Fatal(err)
					}
					assertGolden(t, k, seed)
				})
			}
		}
	}
}

// TestGoldenSeedEquivalenceHarden repeats the comparison with TMR
// hardening on, at both ends of the opt ladder.
func TestGoldenSeedEquivalenceHarden(t *testing.T) {
	for _, wl := range []string{"DiffGen-64", "SW-64"} {
		spec, _ := workloads.Get(wl)
		for _, arch := range goldenTargets {
			for _, opt := range []chopper.OptLevel{chopper.OptBitslice, chopper.OptFull} {
				t.Run(fmt.Sprintf("%s/%s/%s", wl, arch, opt), func(t *testing.T) {
					k, err := chopper.Compile(spec.Src, chopper.Options{Target: arch, Harden: true}.WithOpt(opt))
					if err != nil {
						t.Fatal(err)
					}
					seed, err := seedCompile(k, opt)
					if err != nil {
						t.Fatal(err)
					}
					assertGolden(t, k, seed)
				})
			}
		}
	}
}

// TestGoldenSeedBudgets compares budget-truncated compiles: both sides
// must trip the same guard dimension at the same count.
func TestGoldenSeedBudgets(t *testing.T) {
	spec, _ := workloads.Get("SW-64")
	cases := []struct {
		name   string
		budget chopper.Budget
	}{
		{"micro-ops", chopper.Budget{MaxMicroOps: 100}},
		{"net-gates", chopper.Budget{MaxNetGates: 100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.Ambit, Budget: tc.budget})
			var fastBE *chopper.BudgetError
			if !errors.As(err, &fastBE) {
				t.Fatalf("fast compile: want *BudgetError, got %v", err)
			}
			// Build the graph once without a budget to feed the seed side.
			full, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.Ambit})
			if err != nil {
				t.Fatal(err)
			}
			_, err = seedcompile.Compile(full.Graph, seedcompile.Options{
				Arch:        chopper.Ambit,
				Opt:         seedobs.Rename,
				DRows:       full.Opts.Geometry.DRows(),
				MaxNetGates: tc.budget.MaxNetGates,
				MaxMicroOps: tc.budget.MaxMicroOps,
			})
			var seedBE *chopper.BudgetError
			if !errors.As(err, &seedBE) {
				t.Fatalf("seed compile: want *BudgetError, got %v", err)
			}
			if fastBE.Dimension != seedBE.Dimension || fastBE.Limit != seedBE.Limit || fastBE.Count != seedBE.Count {
				t.Fatalf("budget errors diverge:\n fast: %v\n seed: %v", fastBE, seedBE)
			}
		})
	}
}

// TestGoldenSeedDegradation forces the scheduled OBS passes to panic so
// the ladder lands on OptBitslice, and checks the degraded program equals
// the seed pipeline run directly at bitslice level.
func TestGoldenSeedDegradation(t *testing.T) {
	obs.TestPanicHook = func(pressureAware bool) {
		if pressureAware {
			panic("obs: forced test panic")
		}
	}
	defer func() { obs.TestPanicHook = nil }()

	spec, _ := workloads.Get("DiffGen-64")
	for _, arch := range goldenTargets {
		t.Run(arch.String(), func(t *testing.T) {
			k, err := chopper.Compile(spec.Src, chopper.Options{Target: arch})
			if err != nil {
				t.Fatal(err)
			}
			if k.Degradation == nil || k.Degradation.Effective != chopper.OptBitslice {
				t.Fatalf("expected degradation to OptBitslice, got %+v", k.Degradation)
			}
			seed, err := seedCompile(k, chopper.OptBitslice)
			if err != nil {
				t.Fatal(err)
			}
			assertGolden(t, k, seed)
		})
	}
}
