package chopper

import (
	"fmt"
	"math/big"

	"chopper/internal/bitslice"
	"chopper/internal/codegen"
	"chopper/internal/dfg"
	"chopper/internal/dsl"
	"chopper/internal/guard"
	"chopper/internal/logic"
	"chopper/internal/typecheck"
)

// CompileHorizontal compiles a purely bitwise kernel for the horizontal
// (bit-parallel) data layout: each operand occupies ONE DRAM row with its
// elements packed side by side, and every micro-op processes all of them
// at once. No transposition is needed — this is the layout generalization
// the paper's Section VI discusses for extending CHOPPER to other
// processing-using-memory substrates.
//
// The trade-off is fundamental to the hardware: bitlines cannot propagate
// carries, so only position-wise operations compile in this layout —
// AND, OR, XOR, NOT (and whatever folds into them). Arithmetic,
// comparisons, shifts, and multiplexing require the vertical (bit-serial)
// layout and are rejected with an explanatory error.
//
// The returned kernel's interface has one 1-bit "lane" per packed data
// bit: running it over `lanes` lanes processes lanes bits of each operand
// (lanes/width elements).
func CompileHorizontal(src string, opts Options) (*Kernel, error) {
	opts = opts.normalize()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return cachedCompile("horizontal", src, opts, func() (*Kernel, error) {
		return compileHorizontalSource(src, opts)
	})
}

func compileHorizontalSource(src string, opts Options) (*Kernel, error) {
	prog, err := dsl.ParseAndExpand(src)
	if err != nil {
		return nil, fmt.Errorf("chopper: parse: %w", err)
	}
	checked, err := typecheck.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("chopper: typecheck: %w", err)
	}
	entry := opts.Entry
	if entry == "" {
		entry = prog.Entry().Name
	}
	graph, err := dfg.BuildNode(checked, entry)
	if err != nil {
		return nil, fmt.Errorf("chopper: normalize: %w", err)
	}
	hg, err := horizontalGraph(graph)
	if err != nil {
		return nil, err
	}
	k, err := compileHorizontalGraph(hg, opts)
	if err != nil {
		return nil, err
	}
	k.Program = prog
	return k, nil
}

// horizontalGraph converts a bitwise dataflow graph into its width-1
// equivalent: each operand becomes a single "bit" whose row carries the
// packed elements. Non-positionwise operations are rejected.
func horizontalGraph(g *dfg.Graph) (*dfg.Graph, error) {
	out := &dfg.Graph{}
	for i := range g.Values {
		v := g.Values[i]
		switch v.Kind {
		case dfg.OpInput, dfg.OpAnd, dfg.OpOr, dfg.OpXor, dfg.OpNot:
			// Position-wise: legal in the horizontal layout.
		case dfg.OpConst:
			// A constant row is representable only when uniform across
			// bit positions (all zeros or all ones): anything else would
			// need per-position values, i.e. the vertical layout.
			w := v.Width
			allOnes := true
			for b := 0; b < w; b++ {
				if v.Imm.Bit(b) == 0 {
					allOnes = false
					break
				}
			}
			if v.Imm.Sign() != 0 && !allOnes {
				return nil, fmt.Errorf("chopper: constant %v is not uniform; the horizontal layout only holds all-0/all-1 constants", v.Imm)
			}
		default:
			return nil, fmt.Errorf("chopper: operation %s needs carries or per-bit wiring across bitlines; it requires the vertical layout (use Compile)", v.Kind)
		}
		nv := dfg.Value{Kind: v.Kind, Width: 1, Name: v.Name}
		if v.Kind == dfg.OpConst {
			nv.Imm = v.Imm // sign carries the uniform value (0 vs nonzero)
			if v.Imm.Sign() != 0 {
				nv.Imm = bigOne
			}
		}
		for _, a := range v.Args {
			nv.Args = append(nv.Args, a)
		}
		out.Values = append(out.Values, nv)
	}
	out.Inputs = append([]dfg.ValueID(nil), g.Inputs...)
	out.Outputs = append([]dfg.ValueID(nil), g.Outputs...)
	out.OutputNames = append([]string(nil), g.OutputNames...)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

func compileHorizontalGraph(graph *dfg.Graph, opts Options) (*Kernel, error) {
	opt := opts.Opt
	net, err := bitslice.Lower(graph, bitslice.Options{Fold: opt.HasReuse()})
	if err != nil {
		return nil, fmt.Errorf("chopper: bitslice: %w", err)
	}
	leg, err := logic.Legalize(net, opts.Target, logic.BuilderOptions{Fold: opt.HasReuse(), CSE: true})
	if err != nil {
		return nil, fmt.Errorf("chopper: legalize: %w", err)
	}
	leg = leg.DCE()
	code, err := codegen.Generate(leg, codegen.Options{
		Arch:    opts.Target,
		Variant: opt,
		DRows:   opts.Geometry.DRows(),
		MaxOps:  opts.Budget.MaxMicroOps,
	})
	if err != nil {
		if guard.IsGuard(err) {
			return nil, err
		}
		return nil, fmt.Errorf("chopper: codegen: %w", err)
	}
	k := &Kernel{
		Opts: opts, Graph: graph, Net: leg, Code: code,
		prog: code.Prog, inputTag: code.InputTag, outputTag: code.OutputTag,
		constPattern: code.ConstPattern,
	}
	for _, in := range graph.Inputs {
		v := graph.Values[in]
		k.Inputs = append(k.Inputs, IOSpec{Name: v.Name, Width: 1})
	}
	for i := range graph.Outputs {
		k.Outputs = append(k.Outputs, IOSpec{Name: graph.OutputNames[i], Width: 1})
	}
	return k, nil
}

var bigOne = big.NewInt(1)
