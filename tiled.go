package chopper

import (
	"context"
	"fmt"
	"sync"

	"chopper/internal/dram"
	"chopper/internal/guard"
	"chopper/internal/pool"
	"chopper/internal/sim"
	"chopper/internal/transpose"
	"chopper/internal/vircoe"
)

// tileScratch is the per-worker functional state of one tile run: a
// subarray and a spill store, pooled so repeated RunTiled calls (and the
// benchmark harness driving them) reuse arenas instead of reallocating
// them per tile.
type tileScratch struct {
	sub   *sim.Subarray
	spill *sim.SpillStore
}

var tileScratchPool sync.Pool

func getTileScratch(dRows, lanes int) *tileScratch {
	if v := tileScratchPool.Get(); v != nil {
		ts := v.(*tileScratch)
		ts.sub.Configure(dRows, lanes)
		ts.spill.Reset()
		return ts
	}
	return &tileScratch{sub: sim.NewSubarray(dRows, lanes), spill: sim.NewSpillStore()}
}

func putTileScratch(ts *tileScratch) { tileScratchPool.Put(ts) }

// tileEnginePool recycles timing engines across shards and across RunTiled
// calls; Reconfigure reuses the scheduling slices when the unit count is
// unchanged, so steady-state replay allocates nothing per shard.
var tileEnginePool sync.Pool

func getTileEngine(g dram.Geometry, t dram.Timing, salp bool) *dram.Engine {
	if v := tileEnginePool.Get(); v != nil {
		e := v.(*dram.Engine)
		e.Reconfigure(g, t, salp)
		return e
	}
	return dram.NewEngine(g, t, salp)
}

func putTileEngine(e *dram.Engine) { tileEnginePool.Put(e) }

// TiledResult carries a tiled run's outputs and timing.
type TiledResult struct {
	// Outputs, per operand, one limb-slice per lane (lane order matches
	// the inputs).
	Outputs map[string][][]uint64
	// TimeNs is the device makespan for the whole dataset: the slowest
	// channel shard's command-level replay time. It excludes host<->DRAM
	// transfers, which TransferNs/EndToEndNs account for separately.
	TimeNs float64
	// TransferNs is the host<->DRAM DMA time: scattering every input tile
	// into the subarrays plus gathering every output tile back, at the
	// aggregate bandwidth of the geometry's channels (Options.Transfer).
	TransferNs float64
	// OverlapNs is the portion of TransferNs hidden behind device compute:
	// with more than one tile, the DMA of one tile pipelines against the
	// computation of the others, so only the first scatter and last gather
	// sit fully exposed on the critical path.
	OverlapNs float64
	// EndToEndNs is TimeNs + TransferNs - OverlapNs: the host-visible
	// completion time of the whole tiled run.
	EndToEndNs float64
	// Tiles is how many subarray tiles the data was split into.
	Tiles int
	// Channels is how many per-channel engine shards replayed the issue
	// stream (min of the geometry's channel count and Tiles).
	Channels int
	// Stats are the timing-engine counters, merged across channel shards
	// in shard order (makespans take the max, counters sum).
	Stats dram.EngineStats
	// Emit are the VIRCOE emitter statistics, merged across channel
	// shards the same way (SpanNs takes the max, counters sum).
	Emit vircoe.Stats
}

// RunTiled executes the kernel over a dataset of any number of lanes: the
// lanes are split into subarray-sized tiles, the tiles are placed across
// channels and banks (one per bank, wrapping onto further subarrays), the
// issue stream of each channel is produced by VIRCOE and replayed through
// that channel's own timing engine, and every tile executes functionally
// on the simulated device. Inputs and outputs use the wide (limb-slice per
// lane) representation of RunWide.
//
// This is the whole-dataset counterpart of RunWide and exercises the same
// multi-subarray path the benchmark harness measures. The timing replay
// honors Options.SALP and Options.Emitter (the serial path used to pin
// salp=false and the bank-aware emitter regardless of Options), and the
// result separates device makespan from host-transfer time.
func (k *Kernel) RunTiled(inputs map[string][][]uint64, lanes int) (*TiledResult, error) {
	return k.RunTiledCtx(nil, inputs, lanes)
}

// RunTiledCtx is RunTiled under the guard layer: workers observe ctx
// between tiles and inside each tile's execution loop, the kernel's
// Options.Budget caps total functional steps (sim-steps) and timing-engine
// commands (dram-commands), and budget/deadline stops surface with their
// sentinel identity at any worker count. Both budgets are pre-checked
// deterministically — the total work (tiles x program length) is known
// before anything runs — so the stop is identical at every worker count
// and every channel count instead of depending on which shard trips it.
func (k *Kernel) RunTiledCtx(ctx context.Context, inputs map[string][][]uint64, lanes int) (*TiledResult, error) {
	if lanes <= 0 {
		return nil, optionsErrf("lanes must be positive, have %d", lanes)
	}
	if k.Opts.Recovery.Enabled() {
		// Epoch recovery checkpoints one subarray's state; the tiled
		// multi-subarray path has no per-tile rollback story yet.
		return nil, optionsErrf("recovery (detector %s) is single-subarray only; RunTiled does not support it", k.Opts.Recovery.Detector)
	}
	geom := k.Opts.Geometry
	tileLanes := geom.Bitlines()
	tiles := (lanes + tileLanes - 1) / tileLanes
	channels := geom.ChannelCount()
	maxTiles := channels * geom.Banks * geom.SubarraysPB
	if tiles > maxTiles {
		return nil, fmt.Errorf("chopper: %d lanes need %d tiles; device holds %d", lanes, tiles, maxTiles)
	}
	for _, in := range k.Inputs {
		if len(inputs[in.Name]) < lanes {
			return nil, fmt.Errorf("chopper: input %q has %d lanes, need %d", in.Name, len(inputs[in.Name]), lanes)
		}
	}
	// The functional work is tiles x program length, known before anything
	// runs: enforce the sim-steps budget up front so the stop is identical
	// at every worker count instead of depending on which tile trips it.
	if err := guard.Check(guard.DimSimSteps, k.Opts.Budget.MaxSimSteps, tiles*len(k.prog.Ops)); err != nil {
		return nil, err
	}
	// Same for the dram-commands budget: VIRCOE emits each program op once
	// per tile, so the total command count is tiles x program length no
	// matter how the stream is sharded. The serial engine checked this per
	// command and stopped at count = limit+1; reproduce that exact stop
	// here so the error is byte-identical at any channel count.
	if maxC := k.Opts.Budget.MaxDRAMCommands; maxC > 0 && tiles*len(k.prog.Ops) > maxC {
		return nil, guard.Check(guard.DimDRAMCommands, maxC, maxC+1)
	}

	// Transpose each tile of each input independently, tallying the bytes
	// the host must scatter into the device (the vertical row data).
	type tileKey struct {
		name string
		tile int
	}
	tileRows := make(map[tileKey][][]uint64)
	laneCount := func(tile int) int {
		n := lanes - tile*tileLanes
		if n > tileLanes {
			n = tileLanes
		}
		return n
	}
	var inBytes float64
	for _, in := range k.Inputs {
		vals := inputs[in.Name]
		for tl := 0; tl < tiles; tl++ {
			n := laneCount(tl)
			seg := vals[tl*tileLanes : tl*tileLanes+n]
			tileRows[tileKey{in.Name, tl}] = transpose.ToVerticalWide(seg, in.Width, n)
			inBytes += float64(in.Width * transpose.Words(n) * 8)
		}
	}

	// Tag lookup tables (mirrors hostIO, but per tile).
	type bitRef struct {
		base string
		bit  int
	}
	inByTag := make(map[int]bitRef, len(k.inputTag))
	for name, tag := range k.inputTag {
		base, bit, err := splitBit(name)
		if err != nil {
			return nil, err
		}
		inByTag[tag] = bitRef{base, bit}
	}
	outByTag := make(map[int]bitRef, len(k.outputTag))
	outRows := make(map[tileKey][][]uint64)
	for name, tag := range k.outputTag {
		base, bit, err := splitBit(name)
		if err != nil {
			return nil, err
		}
		outByTag[tag] = bitRef{base, bit}
	}
	var outBytes float64
	for _, o := range k.Outputs {
		for tl := 0; tl < tiles; tl++ {
			rows := make([][]uint64, o.Width)
			for b := range rows {
				rows[b] = make([]uint64, transpose.Words(laneCount(tl)))
			}
			outRows[tileKey{o.Name, tl}] = rows
			outBytes += float64(o.Width * transpose.Words(laneCount(tl)) * 8)
		}
	}

	// Tiles are independent subarray programs: each runs the same micro-op
	// sequence over its own rows, so their functional execution fans out
	// across GOMAXPROCS workers. Tile tl touches only the tileRows/outRows
	// entries keyed by tl (both maps are fully populated above, so workers
	// only read the maps), which keeps the fan-out race-free and the
	// gathered result identical at any worker count.
	d := k.decodedProg()
	if err := pool.RunCtx(ctx, 0, tiles, func(tl int) error {
		ts := getTileScratch(geom.DRows(), tileLanes)
		defer putTileScratch(ts)
		// Constant-pattern rows for this tile are built once, not per
		// WRITE (the simulator copies payloads, so sharing is safe).
		var constRows map[int][]uint64
		if len(k.constPattern) > 0 {
			constRows = make(map[int][]uint64, len(k.constPattern))
			n := laneCount(tl)
			for tag, pat := range k.constPattern {
				row := make([]uint64, transpose.Words(n))
				for i := range row {
					row[i] = pat
				}
				if r := n % 64; r != 0 {
					row[len(row)-1] &= (uint64(1) << uint(r)) - 1
				}
				constRows[tag] = row
			}
		}
		io := &sim.HostIO{
			WriteData: func(tag int) []uint64 {
				if ref, ok := inByTag[tag]; ok {
					return tileRows[tileKey{ref.base, tl}][ref.bit]
				}
				return constRows[tag]
			},
			ReadSink: func(tag int, data []uint64) {
				if ref, ok := outByTag[tag]; ok {
					copy(outRows[tileKey{ref.base, tl}][ref.bit], data)
				}
			},
		}
		for i := 0; i < d.Len(); i++ {
			if i&255 == 0 {
				if err := guard.Ctx(ctx); err != nil {
					return err
				}
			}
			if err := ts.sub.ExecDecoded(d, i, io, ts.spill); err != nil {
				return fmt.Errorf("chopper: tile %d op %d: %w", tl, i, err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// The timing model is sharded by memory channel: tiles are dealt
	// round-robin across the shards, each shard VIRCOE-orders its own
	// tiles' issue stream and replays it through its own engine (channels
	// have independent command/data buses, so makespan depends only on
	// intra-channel issue order and bus contention). Shard results land in
	// a slice indexed by shard and merge in fixed shard order, so the
	// result is byte-identical at any worker count — and at Channels=1 the
	// single shard is exactly the old serial replay.
	mode := k.Opts.emitterMode()
	timing := dram.TimingFor(k.Opts.Target, geom)
	shards := channels
	if shards > tiles {
		shards = tiles
	}
	type shardTiming struct {
		makespan float64
		eng      dram.EngineStats
		emit     vircoe.Stats
	}
	shardRes := make([]shardTiming, shards)
	if err := pool.RunCtx(ctx, 0, shards, func(s int) error {
		count := tiles / shards
		if s < tiles%shards {
			count++
		}
		pls, err := vircoe.Placements(geom, count)
		if err != nil {
			return err // unreachable: the capacity check above bounds count
		}
		stream, emitStats := vircoe.Emit(k.prog, pls, mode, timing)
		eng := getTileEngine(geom, timing, k.Opts.SALP)
		defer putTileEngine(eng)
		ns, err := eng.RunCtx(ctx, stream, 0)
		if err != nil {
			return err
		}
		shardRes[s] = shardTiming{makespan: ns, eng: eng.Stats(), emit: emitStats}
		return nil
	}); err != nil {
		return nil, err
	}

	var deviceNs float64
	var engStats dram.EngineStats
	var emitStats vircoe.Stats
	for s := range shardRes {
		r := &shardRes[s]
		if r.makespan > deviceNs {
			deviceNs = r.makespan
		}
		engStats.Ops += r.eng.Ops
		engStats.Transfers += r.eng.Transfers
		engStats.ComputeNs += r.eng.ComputeNs
		engStats.TransferNs += r.eng.TransferNs
		engStats.SSDNs += r.eng.SSDNs
		engStats.BusBusyNs += r.eng.BusBusyNs
		engStats.SpillIns += r.eng.SpillIns
		engStats.SpillOuts += r.eng.SpillOuts
		engStats.EnergyPJ += r.eng.EnergyPJ
		engStats.UnitBusySum += r.eng.UnitBusySum
		engStats.DistinctUnit += r.eng.DistinctUnit
		engStats.StallNs += r.eng.StallNs
		if r.eng.MakespanNs > engStats.MakespanNs {
			engStats.MakespanNs = r.eng.MakespanNs
		}
		if r.eng.MaxUnitBusy > engStats.MaxUnitBusy {
			engStats.MaxUnitBusy = r.eng.MaxUnitBusy
		}
		emitStats.Ops += r.emit.Ops
		emitStats.Transfers += r.emit.Transfers
		emitStats.Subarrays += r.emit.Subarrays
		emitStats.Interleave += r.emit.Interleave
		emitStats.BusBusyNs += r.emit.BusBusyNs
		if r.emit.SpanNs > emitStats.SpanNs {
			emitStats.SpanNs = r.emit.SpanNs
		}
	}

	// Host-transfer accounting: one scatter DMA moves every input tile in,
	// one gather DMA moves every output tile out, each at the aggregate
	// bandwidth of all channels. With more than one tile the wire time
	// (streaming, minus the fixed DMA setup) pipelines against device
	// compute — tile t+1 scatters while tile t computes — so all but a
	// 1/tiles fraction of it can hide behind the makespan.
	tr := k.Opts.Transfer.model()
	scatterNs := tr.TimeNs(inBytes, channels)
	gatherNs := tr.TimeNs(outBytes, channels)
	var wireNs float64
	if inBytes > 0 {
		wireNs += scatterNs - tr.DMASetupNs
	}
	if outBytes > 0 {
		wireNs += gatherNs - tr.DMASetupNs
	}
	overlapNs := wireNs * float64(tiles-1) / float64(tiles)
	if overlapNs > deviceNs {
		overlapNs = deviceNs
	}
	transferNs := scatterNs + gatherNs

	// Gather tiles back into lane order.
	res := &TiledResult{
		Outputs:    make(map[string][][]uint64, len(k.Outputs)),
		TimeNs:     deviceNs,
		TransferNs: transferNs,
		OverlapNs:  overlapNs,
		EndToEndNs: deviceNs + transferNs - overlapNs,
		Tiles:      tiles,
		Channels:   shards,
		Stats:      engStats,
		Emit:       emitStats,
	}
	for _, o := range k.Outputs {
		all := make([][]uint64, 0, lanes)
		for tl := 0; tl < tiles; tl++ {
			n := laneCount(tl)
			all = append(all, transpose.FromVerticalWide(outRows[tileKey{o.Name, tl}], o.Width, n)...)
		}
		res.Outputs[o.Name] = all
	}
	return res, nil
}
