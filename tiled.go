package chopper

import (
	"context"
	"fmt"
	"sync"

	"chopper/internal/dram"
	"chopper/internal/guard"
	"chopper/internal/pool"
	"chopper/internal/sim"
	"chopper/internal/transpose"
	"chopper/internal/vircoe"
)

// tileScratch is the per-worker functional state of one tile run: a
// subarray and a spill store, pooled so repeated RunTiled calls (and the
// benchmark harness driving them) reuse arenas instead of reallocating
// them per tile.
type tileScratch struct {
	sub   *sim.Subarray
	spill *sim.SpillStore
}

var tileScratchPool sync.Pool

func getTileScratch(dRows, lanes int) *tileScratch {
	if v := tileScratchPool.Get(); v != nil {
		ts := v.(*tileScratch)
		ts.sub.Configure(dRows, lanes)
		ts.spill.Reset()
		return ts
	}
	return &tileScratch{sub: sim.NewSubarray(dRows, lanes), spill: sim.NewSpillStore()}
}

func putTileScratch(ts *tileScratch) { tileScratchPool.Put(ts) }

// TiledResult carries a tiled run's outputs and timing.
type TiledResult struct {
	// Outputs, per operand, one limb-slice per lane (lane order matches
	// the inputs).
	Outputs map[string][][]uint64
	// TimeNs is the device makespan for the whole dataset.
	TimeNs float64
	// Tiles is how many subarray tiles the data was split into.
	Tiles int
	// Stats are the timing-engine counters.
	Stats dram.EngineStats
}

// RunTiled executes the kernel over a dataset of any number of lanes: the
// lanes are split into subarray-sized tiles, the tiles are placed across
// banks (one per bank, wrapping onto further subarrays), the issue stream
// is produced by VIRCOE, and every tile executes functionally on the
// simulated device. Inputs and outputs use the wide (limb-slice per lane)
// representation of RunWide.
//
// This is the whole-dataset counterpart of RunWide and exercises the same
// multi-subarray path the benchmark harness measures.
func (k *Kernel) RunTiled(inputs map[string][][]uint64, lanes int) (*TiledResult, error) {
	return k.RunTiledCtx(nil, inputs, lanes)
}

// RunTiledCtx is RunTiled under the guard layer: workers observe ctx
// between tiles and inside each tile's execution loop, the kernel's
// Options.Budget caps total functional steps (sim-steps, pre-checked
// deterministically from tiles x program length) and timing-engine
// commands (dram-commands), and budget/deadline stops surface with their
// sentinel identity at any worker count.
func (k *Kernel) RunTiledCtx(ctx context.Context, inputs map[string][][]uint64, lanes int) (*TiledResult, error) {
	if lanes <= 0 {
		return nil, optionsErrf("lanes must be positive, have %d", lanes)
	}
	if k.Opts.Recovery.Enabled() {
		// Epoch recovery checkpoints one subarray's state; the tiled
		// multi-subarray path has no per-tile rollback story yet.
		return nil, optionsErrf("recovery (detector %s) is single-subarray only; RunTiled does not support it", k.Opts.Recovery.Detector)
	}
	geom := k.Opts.Geometry
	tileLanes := geom.Bitlines()
	tiles := (lanes + tileLanes - 1) / tileLanes
	maxTiles := geom.Banks * geom.SubarraysPB
	if tiles > maxTiles {
		return nil, fmt.Errorf("chopper: %d lanes need %d tiles; device holds %d", lanes, tiles, maxTiles)
	}
	for _, in := range k.Inputs {
		if len(inputs[in.Name]) < lanes {
			return nil, fmt.Errorf("chopper: input %q has %d lanes, need %d", in.Name, len(inputs[in.Name]), lanes)
		}
	}
	// The functional work is tiles x program length, known before anything
	// runs: enforce the sim-steps budget up front so the stop is identical
	// at every worker count instead of depending on which tile trips it.
	if err := guard.Check(guard.DimSimSteps, k.Opts.Budget.MaxSimSteps, tiles*len(k.prog.Ops)); err != nil {
		return nil, err
	}

	// Transpose each tile of each input independently.
	type tileKey struct {
		name string
		tile int
	}
	tileRows := make(map[tileKey][][]uint64)
	laneCount := func(tile int) int {
		n := lanes - tile*tileLanes
		if n > tileLanes {
			n = tileLanes
		}
		return n
	}
	for _, in := range k.Inputs {
		vals := inputs[in.Name]
		for tl := 0; tl < tiles; tl++ {
			n := laneCount(tl)
			seg := vals[tl*tileLanes : tl*tileLanes+n]
			tileRows[tileKey{in.Name, tl}] = transpose.ToVerticalWide(seg, in.Width, n)
		}
	}

	placements := vircoe.Placements(geom, tiles)

	// Tag lookup tables (mirrors hostIO, but per tile).
	type bitRef struct {
		base string
		bit  int
	}
	inByTag := make(map[int]bitRef, len(k.inputTag))
	for name, tag := range k.inputTag {
		base, bit, err := splitBit(name)
		if err != nil {
			return nil, err
		}
		inByTag[tag] = bitRef{base, bit}
	}
	outByTag := make(map[int]bitRef, len(k.outputTag))
	outRows := make(map[tileKey][][]uint64)
	for name, tag := range k.outputTag {
		base, bit, err := splitBit(name)
		if err != nil {
			return nil, err
		}
		outByTag[tag] = bitRef{base, bit}
	}
	for _, o := range k.Outputs {
		for tl := 0; tl < tiles; tl++ {
			rows := make([][]uint64, o.Width)
			for b := range rows {
				rows[b] = make([]uint64, transpose.Words(laneCount(tl)))
			}
			outRows[tileKey{o.Name, tl}] = rows
		}
	}

	stream, _ := vircoe.Emit(k.prog, placements, vircoe.BankAware, dram.TimingFor(k.Opts.Target, geom))

	// Tiles are independent subarray programs: each runs the same micro-op
	// sequence over its own rows, so their functional execution fans out
	// across GOMAXPROCS workers. Tile tl touches only the tileRows/outRows
	// entries keyed by tl (both maps are fully populated above, so workers
	// only read the maps), which keeps the fan-out race-free and the
	// gathered result identical at any worker count.
	d := k.decodedProg()
	if err := pool.RunCtx(ctx, 0, tiles, func(tl int) error {
		ts := getTileScratch(geom.DRows(), tileLanes)
		defer putTileScratch(ts)
		// Constant-pattern rows for this tile are built once, not per
		// WRITE (the simulator copies payloads, so sharing is safe).
		var constRows map[int][]uint64
		if len(k.constPattern) > 0 {
			constRows = make(map[int][]uint64, len(k.constPattern))
			n := laneCount(tl)
			for tag, pat := range k.constPattern {
				row := make([]uint64, transpose.Words(n))
				for i := range row {
					row[i] = pat
				}
				if r := n % 64; r != 0 {
					row[len(row)-1] &= (uint64(1) << uint(r)) - 1
				}
				constRows[tag] = row
			}
		}
		io := &sim.HostIO{
			WriteData: func(tag int) []uint64 {
				if ref, ok := inByTag[tag]; ok {
					return tileRows[tileKey{ref.base, tl}][ref.bit]
				}
				return constRows[tag]
			},
			ReadSink: func(tag int, data []uint64) {
				if ref, ok := outByTag[tag]; ok {
					copy(outRows[tileKey{ref.base, tl}][ref.bit], data)
				}
			},
		}
		for i := 0; i < d.Len(); i++ {
			if i&255 == 0 {
				if err := guard.Ctx(ctx); err != nil {
					return err
				}
			}
			if err := ts.sub.ExecDecoded(d, i, io, ts.spill); err != nil {
				return fmt.Errorf("chopper: tile %d op %d: %w", tl, i, err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// The timing model stays serialized over the VIRCOE-ordered stream:
	// makespan depends on issue order and shared-bus contention, which the
	// engine accounts for command by command.
	eng := dram.NewEngine(geom, dram.TimingFor(k.Opts.Target, geom), false)
	timeNs, err := eng.RunCtx(ctx, stream, k.Opts.Budget.MaxDRAMCommands)
	if err != nil {
		return nil, err
	}

	// Gather tiles back into lane order.
	res := &TiledResult{
		Outputs: make(map[string][][]uint64, len(k.Outputs)),
		TimeNs:  timeNs,
		Tiles:   tiles,
		Stats:   eng.Stats(),
	}
	for _, o := range k.Outputs {
		all := make([][]uint64, 0, lanes)
		for tl := 0; tl < tiles; tl++ {
			n := laneCount(tl)
			all = append(all, transpose.FromVerticalWide(outRows[tileKey{o.Name, tl}], o.Width, n)...)
		}
		res.Outputs[o.Name] = all
	}
	return res, nil
}
