package chopper

import (
	"errors"
	"fmt"
)

// Sentinel error classes. Every error the public API returns wraps one of
// these, so callers can program against failure stages with errors.Is
// instead of matching message text:
//
//	k, err := chopper.Compile(src, opts)
//	if errors.Is(err, chopper.ErrParse) { ... surface source diagnostics }
//	if errors.Is(err, chopper.ErrInternal) { ... file a bug, input was legal }
var (
	// ErrParse marks failures of DSL lexing, parsing or macro expansion.
	ErrParse = errors.New("chopper: parse error")
	// ErrTypecheck marks failures of the type checker.
	ErrTypecheck = errors.New("chopper: typecheck error")
	// ErrNormalize marks failures of dataflow-graph normalization
	// (including entry-node resolution).
	ErrNormalize = errors.New("chopper: normalize error")
	// ErrCodegen marks failures of the back-end: bit-slicing,
	// legalization, hardening and micro-op generation.
	ErrCodegen = errors.New("chopper: codegen error")
	// ErrVerify marks a verification discrepancy: the compiled kernel's
	// simulated output disagrees with the reference dataflow semantics.
	ErrVerify = errors.New("chopper: verify error")
	// ErrInternal marks a recovered internal panic: the pipeline hit a
	// bug or an unchecked invariant, not a problem with the input.
	ErrInternal = errors.New("chopper: internal error")
)

// stageError attaches a sentinel class to an underlying error while
// keeping the message format the API has always used ("chopper: <stage>:
// <cause>"). errors.Is matches both the class and the wrapped chain.
type stageError struct {
	class error
	msg   string
	err   error
}

func (e *stageError) Error() string        { return e.msg + ": " + e.err.Error() }
func (e *stageError) Unwrap() error        { return e.err }
func (e *stageError) Is(target error) bool { return target == e.class }

// stage wraps err in class with the given message prefix.
func stage(class error, msg string, err error) error {
	return &stageError{class: class, msg: msg, err: err}
}

// stagef is stage over a formatted cause.
func stagef(class error, msg, format string, args ...interface{}) error {
	return &stageError{class: class, msg: msg, err: fmt.Errorf(format, args...)}
}

// recoverToError converts a panic escaping a public API function into an
// ErrInternal-classed error. Deferred at every public entry point so
// hostile inputs or internal bugs (for example the sim.NewSubarray
// dimension panic) surface as errors instead of crashing the caller.
func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = stagef(ErrInternal, "chopper: internal", "%v", r)
	}
}
