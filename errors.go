package chopper

import (
	"errors"
	"fmt"

	"chopper/internal/guard"
)

// Sentinel error classes. Every error the public API returns wraps one of
// these, so callers can program against failure stages with errors.Is
// instead of matching message text:
//
//	k, err := chopper.Compile(src, opts)
//	if errors.Is(err, chopper.ErrParse) { ... surface source diagnostics }
//	if errors.Is(err, chopper.ErrInternal) { ... file a bug, input was legal }
var (
	// ErrParse marks failures of DSL lexing, parsing or macro expansion.
	ErrParse = errors.New("chopper: parse error")
	// ErrTypecheck marks failures of the type checker.
	ErrTypecheck = errors.New("chopper: typecheck error")
	// ErrNormalize marks failures of dataflow-graph normalization
	// (including entry-node resolution).
	ErrNormalize = errors.New("chopper: normalize error")
	// ErrCodegen marks failures of the back-end: bit-slicing,
	// legalization, hardening and micro-op generation.
	ErrCodegen = errors.New("chopper: codegen error")
	// ErrVerify marks a verification discrepancy: the compiled kernel's
	// simulated output disagrees with the reference dataflow semantics.
	ErrVerify = errors.New("chopper: verify error")
	// ErrInternal marks a recovered internal panic: the pipeline hit a
	// bug or an unchecked invariant, not a problem with the input.
	ErrInternal = errors.New("chopper: internal error")
	// ErrOptions marks nonsensical caller-supplied options or arguments
	// (negative lanes, zero trials, negative budgets) rejected up front
	// instead of surfacing as panics deep in the pipeline.
	ErrOptions = errors.New("chopper: options error")
)

// Guard-layer sentinels, re-exported from internal/guard so callers can
// errors.Is against the chopper package directly. These mark cooperative
// terminations — a canceled context, an expired deadline, an exhausted
// resource budget — as opposed to pipeline failures.
var (
	// ErrCanceled marks a run stopped because its context was canceled.
	ErrCanceled = guard.ErrCanceled
	// ErrDeadline marks a run stopped because its context's deadline
	// expired.
	ErrDeadline = guard.ErrDeadline
	// ErrBudget marks a run stopped because a resource budget dimension
	// was exhausted; the concrete error is a *BudgetError naming the
	// dimension and count.
	ErrBudget = guard.ErrBudget
)

// Budget re-exports guard.Budget: per-dimension resource ceilings
// (micro-ops, DRAM commands, logic-net gates, simulator steps) enforced at
// deterministic checkpoints. The zero value is unlimited.
type Budget = guard.Budget

// BudgetError re-exports guard.BudgetError, the concrete budget-exceeded
// error; errors.As against it to learn which dimension a run exhausted.
type BudgetError = guard.BudgetError

// Budget dimension names, as they appear in BudgetError.Dimension.
const (
	DimMicroOps     = guard.DimMicroOps
	DimDRAMCommands = guard.DimDRAMCommands
	DimNetGates     = guard.DimNetGates
	DimSimSteps     = guard.DimSimSteps
)

// ErrorClass maps any error the chopper API returns onto a stable,
// machine-readable class name, so every layer that turns errors into
// protocol artifacts — the chopperd HTTP status mapper, the choppersim
// exit-status logic, log pipelines — classifies identically instead of
// each re-implementing an errors.Is chain.
//
// The classes, checked in this order (guard sentinels first, since a
// budget trip inside codegen must classify as "budget", not "codegen"):
//
//	""          nil error
//	"budget"    ErrBudget (resource budget dimension exhausted)
//	"deadline"  ErrDeadline (context deadline expired)
//	"canceled"  ErrCanceled (context canceled)
//	"options"   ErrOptions (nonsensical caller-supplied options/arguments)
//	"parse"     ErrParse
//	"typecheck" ErrTypecheck
//	"normalize" ErrNormalize
//	"codegen"   ErrCodegen
//	"verify"    ErrVerify
//	"internal"  ErrInternal (recovered pipeline panic; input was legal)
//	"unknown"   anything else (foreign errors, wrapped I/O, ...)
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrOptions):
		return "options"
	case errors.Is(err, ErrParse):
		return "parse"
	case errors.Is(err, ErrTypecheck):
		return "typecheck"
	case errors.Is(err, ErrNormalize):
		return "normalize"
	case errors.Is(err, ErrCodegen):
		return "codegen"
	case errors.Is(err, ErrVerify):
		return "verify"
	case errors.Is(err, ErrInternal):
		return "internal"
	default:
		return "unknown"
	}
}

// stageError attaches a sentinel class to an underlying error while
// keeping the message format the API has always used ("chopper: <stage>:
// <cause>"). errors.Is matches both the class and the wrapped chain.
type stageError struct {
	class error
	msg   string
	err   error
}

func (e *stageError) Error() string        { return e.msg + ": " + e.err.Error() }
func (e *stageError) Unwrap() error        { return e.err }
func (e *stageError) Is(target error) bool { return target == e.class }

// stage wraps err in class with the given message prefix.
func stage(class error, msg string, err error) error {
	return &stageError{class: class, msg: msg, err: err}
}

// stagef is stage over a formatted cause.
func stagef(class error, msg, format string, args ...interface{}) error {
	return &stageError{class: class, msg: msg, err: fmt.Errorf(format, args...)}
}

// optionsErrf builds an ErrOptions-classed error.
func optionsErrf(format string, args ...interface{}) error {
	return stagef(ErrOptions, "chopper: options", format, args...)
}

// recoverToError converts a panic escaping a public API function into an
// ErrInternal-classed error. Deferred at every public entry point so
// hostile inputs or internal bugs (for example the sim.NewSubarray
// dimension panic) surface as errors instead of crashing the caller.
func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = stagef(ErrInternal, "chopper: internal", "%v", r)
	}
}
