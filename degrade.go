package chopper

import (
	"fmt"

	"chopper/internal/guard"
)

// DegradationEvent records one step of the compiler's graceful-degradation
// ladder: an optimization level whose pipeline panicked or produced output
// that failed the inter-pass structural check, and was therefore abandoned.
type DegradationEvent struct {
	// Opt is the optimization level that was attempted and failed.
	Opt OptLevel
	// Stage names the pipeline stage that failed ("schedule", "bitslice",
	// "legalize", "harden", "codegen", or a "-check" suffixed stage for a
	// post-pass invariant failure).
	Stage string
	// Reason is the recovered panic value or check failure, as text.
	Reason string
}

// DegradationReport describes how a kernel was compiled when the requested
// optimization pipeline could not be used as-is. The compiler retries at
// successively lower cumulative OBS levels (full -> pass-disabled ->
// OptBitslice) and records each abandoned attempt; the report is attached
// to the resulting Kernel so services can log that they are running
// degraded code. The ladder is deterministic: the same source and options
// produce the same events and the same effective level on every compile.
type DegradationReport struct {
	// Requested is the optimization level the caller asked for.
	Requested OptLevel
	// Effective is the level the kernel was actually compiled at.
	Effective OptLevel
	// Events lists the abandoned attempts, highest level first.
	Events []DegradationEvent
}

// Degraded reports whether the kernel compiled below its requested level.
func (r *DegradationReport) Degraded() bool {
	return r != nil && (r.Effective != r.Requested || len(r.Events) > 0)
}

// passFailure is a degradation-eligible failure: an OBS/codegen pass
// panicked, or its output failed the post-pass structural self-check.
// Ordinary input errors (parse, typecheck, too-small subarray) and guard
// stops are NOT passFailures — they fail the compile directly, because
// retrying at a lower level cannot change them (or must not mask them).
type passFailure struct {
	stage  string
	reason string
}

func (f *passFailure) Error() string {
	return fmt.Sprintf("chopper: pass %s failed: %s", f.stage, f.reason)
}

// protect runs one pipeline stage with panic isolation: a panic in fn
// becomes a *passFailure for the degradation ladder instead of unwinding
// the whole compile. Errors fn returns itself pass through untouched —
// only panics are reclassified.
func protect(stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &passFailure{stage: stage, reason: fmt.Sprint(r)}
		}
	}()
	return fn()
}

// checkFailure wraps a post-pass invariant violation as a *passFailure so
// it takes the same ladder as a pass panic.
func checkFailure(stage string, err error) error {
	return &passFailure{stage: stage + "-check", reason: err.Error()}
}

// degradable reports whether err should send the compile down the ladder.
// Guard stops (budget, cancellation) are explicitly excluded: a canceled
// compile must stop, not silently retry at a lower level.
func degradable(err error) (*passFailure, bool) {
	if guard.IsGuard(err) {
		return nil, false
	}
	pf, ok := err.(*passFailure)
	return pf, ok
}
