package chopper

// Kernel-level golden equivalence: RunRows now goes through the pre-decoded
// single-subarray fast path (Machine.RunDecodedCtx on a pooled machine).
// These tests hold it against the generic placed-stream path
// (sim.Machine.RunCtx on a fresh machine) — functional outputs, timing,
// stats, guard stop points and fault-injection sequences must all match.

import (
	"errors"
	"testing"

	"chopper/internal/dram"
	"chopper/internal/fault"
	"chopper/internal/sim"
	"chopper/internal/transpose"
)

const equivSrc = `
node main(a: u8, b: u8, c: u8) returns (z: u8, f: u1)
vars
  t: u8;
let
  t = (a + b) ^ c;
  z = t - (a & c);
  f = z < b;
tel`

var equivLanes = []int{1, 63, 64, 65, 128}

// genericRunRows executes the kernel the pre-rewrite way: a fresh machine
// and an explicit []dram.Placed stream through Machine.RunCtx.
func genericRunRows(k *Kernel, rows map[string][][]uint64, lanes int, hook func(bank, sub int) sim.FaultHook, b Budget) (*RunResult, error) {
	io, outRows, err := k.hostIO(rows, lanes)
	if err != nil {
		return nil, err
	}
	m := sim.NewMachine(sim.MachineConfig{
		Geom:  k.Opts.Geometry,
		Arch:  k.Opts.Target,
		Lanes: lanes,
		Fault: hook,
	})
	stream := make([]dram.Placed, len(k.prog.Ops))
	for i := range k.prog.Ops {
		stream[i] = dram.Placed{Bank: 0, Subarray: 0, Op: k.prog.Ops[i]}
	}
	t, err := m.RunCtx(nil, stream, io, b)
	if err != nil {
		return nil, err
	}
	return &RunResult{Rows: outRows, TimeNs: t, Stats: m.Stats()}, nil
}

func equivInputs(lanes int, seed uint64) map[string][][]uint64 {
	vals := func(off uint64) []uint64 {
		v := make([]uint64, lanes)
		for i := range v {
			v[i] = (seed*2654435761 + uint64(i)*97 + off) & 0xff
		}
		return v
	}
	return map[string][][]uint64{
		"a": transpose.ToVertical(vals(1), 8, lanes),
		"b": transpose.ToVertical(vals(5), 8, lanes),
		"c": transpose.ToVertical(vals(11), 8, lanes),
	}
}

func rowsEqual(t *testing.T, label string, got, want map[string][][]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Fatalf("%s: output %q has %d bit-rows, want %d", label, name, len(g), len(w))
		}
		for bit := range w {
			for word := range w[bit] {
				if g[bit][word] != w[bit][word] {
					t.Fatalf("%s: output %q bit %d word %d: %#x != %#x",
						label, name, bit, word, g[bit][word], w[bit][word])
				}
			}
		}
	}
}

// TestRunRowsEquivalence holds the fast path and the generic stream path
// byte-identical across architectures and lane widths, including repeat
// runs on the pooled machine.
func TestRunRowsEquivalence(t *testing.T) {
	for _, target := range []Target{Ambit, ELP2IM, SIMDRAM} {
		k, err := Compile(equivSrc, Options{Target: target})
		if err != nil {
			t.Fatalf("%v: compile: %v", target, err)
		}
		for _, lanes := range equivLanes {
			for rep := 0; rep < 2; rep++ { // rep 1 reuses a pooled machine
				rows := equivInputs(lanes, uint64(lanes)+uint64(rep))
				fast, err := k.RunRows(rows, lanes)
				if err != nil {
					t.Fatalf("%v lanes=%d: fast path: %v", target, lanes, err)
				}
				ref, err := genericRunRows(k, rows, lanes, nil, Budget{})
				if err != nil {
					t.Fatalf("%v lanes=%d: generic path: %v", target, lanes, err)
				}
				label := target.String()
				rowsEqual(t, label, fast.Rows, ref.Rows)
				if fast.TimeNs != ref.TimeNs {
					t.Fatalf("%s lanes=%d: TimeNs %v != %v", label, lanes, fast.TimeNs, ref.TimeNs)
				}
				if fast.Stats != ref.Stats {
					t.Fatalf("%s lanes=%d: stats diverged\nfast:    %+v\ngeneric: %+v", label, lanes, fast.Stats, ref.Stats)
				}
			}
		}
	}
}

// TestRunRowsBudgetEquivalence checks that guard budgets stop both paths at
// the same op with the same *BudgetError.
func TestRunRowsBudgetEquivalence(t *testing.T) {
	base, err := Compile(equivSrc, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	nOps := len(base.prog.Ops)
	for _, b := range []Budget{
		{MaxSimSteps: 1},
		{MaxSimSteps: nOps / 2},
		{MaxSimSteps: nOps - 1},
		{MaxDRAMCommands: 7},
		{MaxDRAMCommands: nOps / 3},
	} {
		k, err := Compile(equivSrc, Options{Target: Ambit, Budget: b})
		if err != nil {
			t.Fatalf("budget %+v: compile: %v", b, err)
		}
		rows := equivInputs(64, 3)
		_, fastErr := k.RunRows(rows, 64)
		_, refErr := genericRunRows(k, rows, 64, nil, b)
		if fastErr == nil || refErr == nil {
			t.Fatalf("budget %+v: expected stops, got fast=%v generic=%v", b, fastErr, refErr)
		}
		if !errors.Is(fastErr, ErrBudget) {
			t.Fatalf("budget %+v: fast error %v does not match ErrBudget", b, fastErr)
		}
		var fe, re *BudgetError
		if !errors.As(fastErr, &fe) || !errors.As(refErr, &re) {
			t.Fatalf("budget %+v: not BudgetErrors: fast=%v generic=%v", b, fastErr, refErr)
		}
		if *fe != *re {
			t.Fatalf("budget %+v: stop points differ: fast=%+v generic=%+v", b, *fe, *re)
		}
	}
}

// TestRunRowsFaultEquivalence holds the fault-injected fast path against
// the generic path with an identical fresh injector: same outputs, same
// injected-fault counts, across the injector pool's reuse.
func TestRunRowsFaultEquivalence(t *testing.T) {
	cfg := FaultConfig{
		TRAFlipRate:  0.05,
		CopyFlipRate: 0.03,
	}
	for _, target := range []Target{Ambit, ELP2IM, SIMDRAM} {
		k, err := Compile(equivSrc, Options{Target: target})
		if err != nil {
			t.Fatalf("%v: compile: %v", target, err)
		}
		for _, lanes := range equivLanes {
			for seed := int64(1); seed <= 3; seed++ {
				rows := equivInputs(lanes, uint64(seed))
				fast, err := k.RunRowsUnderFault(rows, lanes, cfg, seed)
				if err != nil {
					t.Fatalf("%v lanes=%d seed=%d: fast: %v", target, lanes, seed, err)
				}
				inj := fault.New(cfg, seed)
				ref, err := genericRunRows(k, rows, lanes, func(bank, sub int) sim.FaultHook {
					if bank == 0 && sub == 0 {
						return inj
					}
					return fault.New(cfg, seed+int64(bank)<<20+int64(sub))
				}, Budget{})
				if err != nil {
					t.Fatalf("%v lanes=%d seed=%d: generic: %v", target, lanes, seed, err)
				}
				label := target.String()
				rowsEqual(t, label, fast.Rows, ref.Rows)
				if fast.Faults != inj.Counts() {
					t.Fatalf("%s lanes=%d seed=%d: fault counts %+v != %+v",
						label, lanes, seed, fast.Faults, inj.Counts())
				}
				if fast.TimeNs != ref.TimeNs {
					t.Fatalf("%s lanes=%d seed=%d: TimeNs %v != %v", label, lanes, seed, fast.TimeNs, ref.TimeNs)
				}
			}
		}
	}
}
