package chopper

import (
	"strings"
	"testing"

	"chopper/internal/isa"
)

func TestVerifyAcceptsCorrectKernels(t *testing.T) {
	for _, src := range []string{
		"node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel",
		"node main(a: u48, b: u48) returns (z: u48, c: u1) let z = a - b; c = a < b; tel",
		"node main(a: u96) returns (z: u96) let z = a + 0x1_0000_0000:u96; tel",
	} {
		for _, arch := range []Target{Ambit, SIMDRAM} {
			k, err := Compile(src, Options{Target: arch})
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Verify(3, 11); err != nil {
				t.Errorf("%v: %v", arch, err)
			}
		}
	}
}

func TestVerifyWorksOnBaselineKernels(t *testing.T) {
	k, err := CompileBaseline("node main(a: u8, b: u8) returns (z: u8) let z = mux(a < b, a, b); tel",
		Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(3, 13); err != nil {
		t.Error(err)
	}
}

// End-to-end coverage of the array/forall/const-table language features:
// compile through the whole stack and execute on the simulated DRAM.
func TestEndToEndArraysAndLoops(t *testing.T) {
	src := `
node main(x: u8[4]) returns (s: u8, m: u8[4])
vars acc: u8[5];
const w: u8[4] = {1, 2, 3, 4};
let
  acc[0] = 0:u8;
  forall i in 0..3 {
    acc[i+1] = acc[i] + (x[i] ^ w[i]);
    m[i] = max(x[i], w[i]);
  }
  s = acc[4];
tel`
	for _, arch := range []Target{Ambit, ELP2IM, SIMDRAM} {
		k, err := Compile(src, Options{Target: arch})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		lanes := 32
		in := map[string][]uint64{}
		for i := 0; i < 4; i++ {
			vals := make([]uint64, lanes)
			for l := range vals {
				vals[l] = uint64((l*31 + i*17) % 256)
			}
			in["x__"+string(rune('0'+i))] = vals
		}
		out, err := k.Run(in, lanes)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		w := []uint64{1, 2, 3, 4}
		for l := 0; l < lanes; l++ {
			var acc uint64
			for i := 0; i < 4; i++ {
				x := in["x__"+string(rune('0'+i))][l]
				acc = (acc + (x ^ w[i])) & 0xFF
				wantM := x
				if w[i] > x {
					wantM = w[i]
				}
				if out["m__"+string(rune('0'+i))][l] != wantM {
					t.Fatalf("%v lane %d m[%d]: got %d want %d", arch, l, i, out["m__"+string(rune('0'+i))][l], wantM)
				}
			}
			if out["s"][l] != acc {
				t.Fatalf("%v lane %d: s=%d want %d", arch, l, out["s"][l], acc)
			}
		}
		if err := k.Verify(2, 5); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
	}
}

func TestVerifyCatchesBrokenPrograms(t *testing.T) {
	k, err := Compile("node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel", Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: flip one TRA into an OR by swapping its control row.
	sabotaged := false
	for i := range k.prog.Ops {
		op := &k.prog.Ops[i]
		if op.Kind == 0 /* AAP */ && op.Src.IsCGroup() && !sabotaged {
			if op.Src.String() == "C0" {
				op.Src = op.Src - 1 // C0 -> C1
				sabotaged = true
			}
		}
	}
	if !sabotaged {
		t.Skip("no control-row copy to sabotage")
	}
	if err := k.Verify(3, 17); err == nil {
		t.Error("verification passed on a sabotaged kernel")
	} else if !strings.Contains(err.Error(), "reference says") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTransposeCost(t *testing.T) {
	k, err := Compile("node main(a: u8, b: u16) returns (z: u16) let z = u16(a) + b; tel", Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	rows, bytes := k.TransposeCost(65536)
	if rows != 24 {
		t.Errorf("rows = %d, want 24", rows)
	}
	if bytes != 24*8192 {
		t.Errorf("bytes = %d", bytes)
	}
}

func TestAsmRoundTrip(t *testing.T) {
	// The assembly chopperc prints must re-assemble into the same program.
	k, err := Compile(fig3Src, Options{Target: SIMDRAM})
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := isa.ParseProgram(k.Asm())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reparsed.Format(), k.Prog().Format(); got != want {
		t.Error("assembly round trip changed the program")
	}
	if reparsed.DRowsUsed > k.Opts.Geometry.DRows() {
		t.Errorf("reconstructed DRowsUsed %d exceeds subarray", reparsed.DRowsUsed)
	}
}
