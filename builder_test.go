package chopper

import (
	"math/big"
	"strings"
	"testing"
)

func TestBuilderBasicKernel(t *testing.T) {
	b := NewBuilder()
	a := b.Input("a", 8)
	c := b.Add(a, b.Const(42, 8))
	cond := b.Lt(a, b.Const(100, 8))
	b.Output("z", b.Mux(cond, c, a))

	k, err := b.Compile(Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.Run(map[string][]uint64{"a": {5, 99, 100, 250}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{47, 141, 100, 250}
	for l, w := range want {
		if out["z"][l] != w {
			t.Errorf("lane %d: z = %d, want %d", l, out["z"][l], w)
		}
	}
	if err := k.Verify(2, 1); err != nil {
		t.Error(err)
	}
}

func TestBuilderFullOperatorSurface(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 12)
	y := b.Input("y", 12)
	v := b.Xor(b.And(x, y), b.Or(x, y))
	v = b.Sub(b.Max(v, x), b.Min(v, y))
	v = b.Add(v, b.AbsDiff(x, y))
	v = b.Mul(v, b.Const(3, 12))
	v = b.Or(b.Shl(v, 2), b.Shr(v, 3))
	v = b.Mux(b.Ne(x, y), v, b.Not(x))
	v = b.Add(v, b.Resize(b.PopCount(b.Resize(x, 6)), 12))
	v = b.Mux(b.LtS(x, y), v, b.Neg(v))
	b.Output("z", v)
	b.Output("sgn", b.GeS(x, y))
	b.Output("eq", b.Eq(x, y))
	b.Output("le", b.Le(x, y))
	b.Output("gt", b.Gt(x, y))
	b.Output("ge", b.Ge(x, y))

	for _, arch := range []Target{Ambit, SIMDRAM} {
		k, err := b.Compile(Options{Target: arch})
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Verify(3, 2); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
	}
}

func TestBuilderBaselinePath(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 8)
	b.Output("z", b.Add(x, b.Const(1, 8)))
	k, err := b.CompileBaseline(Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	if k.Baseline == nil {
		t.Fatal("not a baseline kernel")
	}
	if err := k.Verify(2, 3); err != nil {
		t.Error(err)
	}
}

func TestBuilderErrorsAccumulate(t *testing.T) {
	cases := map[string]func(b *Builder){
		"width mismatch":   func(b *Builder) { b.Add(b.Input("a", 8), b.Input("b", 16)) },
		"duplicate input":  func(b *Builder) { b.Input("a", 8); b.Input("a", 8) },
		"duplicate output": func(b *Builder) { x := b.Input("a", 8); b.Output("z", x); b.Output("z", x) },
		"wide mux cond":    func(b *Builder) { x := b.Input("a", 8); b.Mux(x, x, x) },
		"const overflow":   func(b *Builder) { b.Const(300, 8) },
		"neg const":        func(b *Builder) { b.ConstBig(big.NewInt(-1), 8) },
		"bad width":        func(b *Builder) { b.Input("a", 0) },
		"bad shift":        func(b *Builder) { b.Shl(b.Input("a", 8), -1) },
	}
	for name, build := range cases {
		b := NewBuilder()
		build(b)
		if b.Err() == nil {
			t.Errorf("%s: no error accumulated", name)
		}
		b.Output("sink", b.Const(0, 1))
		if _, err := b.Compile(Options{}); err == nil {
			t.Errorf("%s: Compile succeeded", name)
		}
	}
}

func TestBuilderNoOutputs(t *testing.T) {
	b := NewBuilder()
	b.Input("a", 8)
	if _, err := b.Compile(Options{}); err == nil || !strings.Contains(err.Error(), "no outputs") {
		t.Errorf("err = %v", err)
	}
}

func TestBuilderValueWidth(t *testing.T) {
	b := NewBuilder()
	x := b.Input("a", 24)
	if x.Width() != 24 {
		t.Errorf("width = %d", x.Width())
	}
	if b.Lt(x, b.Const(5, 24)).Width() != 1 {
		t.Error("comparison width != 1")
	}
	if b.Resize(x, 48).Width() != 48 {
		t.Error("resize width wrong")
	}
}
