package chopper

// End-to-end command-line toolchain tests: build the real binaries and
// pipe a program through chopperc and choppersim, including the raw
// assembly path. Guarded by -short since they shell out to the Go tool.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline test shells out to the Go tool")
	}
	dir := t.TempDir()
	chopperc := buildTool(t, dir, "chopperc")
	choppersim := buildTool(t, dir, "choppersim")

	src := filepath.Join(dir, "k.chop")
	if err := os.WriteFile(src, []byte(
		"node main(a: u8, b: u8) returns (z: u8) let z = min(a, b) + 1; tel\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// chopperc: stats dump mentions the instruction mix.
	out, err := exec.Command(chopperc, "-target", "simdram", "-dump", "stats", src).CombinedOutput()
	if err != nil {
		t.Fatalf("chopperc stats: %v\n%s", err, out)
	}
	for _, want := range []string{"SIMDRAM", "instructions:", "AAP", "AP"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}

	// chopperc -> assembly -> choppersim -asm round trip.
	asm, err := exec.Command(chopperc, src).Output()
	if err != nil {
		t.Fatalf("chopperc asm: %v", err)
	}
	pud := filepath.Join(dir, "k.pud")
	if err := os.WriteFile(pud, asm, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(choppersim, "-asm", "-lanes", "8", pud).CombinedOutput()
	if err != nil {
		t.Fatalf("choppersim -asm: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "executed") {
		t.Errorf("asm run output: %s", out)
	}

	// choppersim with explicit per-lane inputs: min(9,4)+1 = 5.
	out, err = exec.Command(choppersim, "-lanes", "2", "-show", "2",
		"-in", "a=9,200", "-in", "b=4,7", src).CombinedOutput()
	if err != nil {
		t.Fatalf("choppersim: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "[5 8]") {
		t.Errorf("expected z=[5 8] in output:\n%s", out)
	}

	// Baseline and horizontal modes compile from the CLI too.
	if out, err := exec.Command(chopperc, "-baseline", "-dump", "stats", src).CombinedOutput(); err != nil {
		t.Fatalf("chopperc -baseline: %v\n%s", err, out)
	}
	bw := filepath.Join(dir, "bw.chop")
	if err := os.WriteFile(bw, []byte(
		"node main(a: u8, b: u8) returns (z: u8) let z = a & ~b; tel\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(chopperc, "-horizontal", "-dump", "stats", bw).CombinedOutput(); err != nil {
		t.Fatalf("chopperc -horizontal: %v\n%s", err, out)
	}

	// Errors surface with positions and nonzero exit.
	bad := filepath.Join(dir, "bad.chop")
	if err := os.WriteFile(bad, []byte("node main(a: u8) returns (z: u8) let z = q; tel\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(chopperc, bad).CombinedOutput()
	if err == nil {
		t.Error("chopperc accepted an invalid program")
	}
	if !strings.Contains(string(out), "undeclared") {
		t.Errorf("error output: %s", out)
	}

	// -show beyond -lanes is clamped, not an index panic.
	out, err = exec.Command(choppersim, "-lanes", "4", "-show", "8", src).CombinedOutput()
	if err != nil {
		t.Fatalf("choppersim -show 8 -lanes 4: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "panic") {
		t.Errorf("clamping failed:\n%s", out)
	}

	// Unknown -target / -opt exit with a one-line error listing the
	// valid values instead of silently defaulting.
	out, err = exec.Command(choppersim, "-target", "hbmpim", src).CombinedOutput()
	if err == nil {
		t.Error("choppersim accepted an unknown -target")
	}
	if !strings.Contains(string(out), "ambit") || !strings.Contains(string(out), "simdram") {
		t.Errorf("unknown -target error does not list valid values:\n%s", out)
	}
	out, err = exec.Command(choppersim, "-opt", "turbo", src).CombinedOutput()
	if err == nil {
		t.Error("choppersim accepted an unknown -opt")
	}
	if !strings.Contains(string(out), "rename") {
		t.Errorf("unknown -opt error does not list valid values:\n%s", out)
	}
}
