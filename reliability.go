package chopper

import (
	"math/big"
	"math/rand"

	"chopper/internal/fault"
	"chopper/internal/transpose"
)

// FaultConfig parameterizes the deterministic DRAM fault models (TRA
// charge-sharing flips, AAP copy corruption, stuck-at bitline columns and
// retention decay). See the fault package documentation for the model and
// seed semantics; the zero value injects nothing.
type FaultConfig = fault.Config

// FaultCounts tallies injected fault events by model.
type FaultCounts = fault.Counts

// StuckColumn describes a permanently defective bitline for
// FaultConfig.StuckColumns.
type StuckColumn = fault.StuckColumn

// ReliabilityPoint is the measured behavior of a kernel under one fault
// configuration.
type ReliabilityPoint struct {
	// Config is the fault configuration this point was measured at.
	Config FaultConfig
	// Runs is the number of random-input runs executed.
	Runs int
	// SDCRuns counts runs with silent data corruption: at least one
	// output lane differed from the reference dataflow semantics.
	SDCRuns int
	// LaneErrors counts corrupted lanes per output, summed over runs.
	LaneErrors map[string]int
	// LaneErrorRate is LaneErrors normalized by Runs*lanes: the
	// probability that a given lane of that output is wrong.
	LaneErrorRate map[string]float64
	// Injected totals the fault events injected across all runs.
	Injected FaultCounts
}

// SDCRate is the fraction of runs that silently corrupted data.
func (p ReliabilityPoint) SDCRate() float64 {
	if p.Runs == 0 {
		return 0
	}
	return float64(p.SDCRuns) / float64(p.Runs)
}

// ReliabilityReport is the output of the reliability harness: the kernel's
// blast radius under a grid of fault configurations, plus its fault-free
// makespan from the DRAM timing model (compare a hardened and an
// unhardened kernel's TimeNs to quantify the TMR latency overhead).
type ReliabilityReport struct {
	// Lanes is the SIMD width each run used.
	Lanes int
	// TimeNs is the fault-free single-subarray makespan of the kernel.
	TimeNs float64
	// Points holds one measurement per requested fault configuration.
	Points []ReliabilityPoint
}

// Reliability measures the kernel under every fault configuration in cfgs:
// for each, `trials` runs over random inputs (64 lanes each, reproducible
// from seed) execute on the faulty functional simulator and every output
// lane is compared bit-exactly against the reference dataflow semantics.
// Unlike VerifyUnderFault, which stops at the first discrepancy, this
// counts all of them — it is the measurement harness behind the
// reliability sweeps in internal/bench.
func (k *Kernel) Reliability(trials int, seed int64, cfgs []FaultConfig) (rep *ReliabilityReport, err error) {
	defer recoverToError(&err)
	const lanes = 64
	rep = &ReliabilityReport{Lanes: lanes}
	rng := rand.New(rand.NewSource(seed))

	// Fault-free timing reference.
	base := randWideInputs(rng, k.Inputs, lanes)
	baseRows := make(map[string][][]uint64, len(base))
	for _, in := range k.Inputs {
		baseRows[in.Name] = transpose.ToVerticalWide(base[in.Name], in.Width, lanes)
	}
	res, err := k.runRows(baseRows, lanes, nil)
	if err != nil {
		return nil, err
	}
	rep.TimeNs = res.TimeNs

	for ci, cfg := range cfgs {
		pt := ReliabilityPoint{
			Config:        cfg,
			LaneErrors:    make(map[string]int, len(k.Outputs)),
			LaneErrorRate: make(map[string]float64, len(k.Outputs)),
		}
		for trial := 0; trial < trials; trial++ {
			inWide := randWideInputs(rng, k.Inputs, lanes)
			rows := make(map[string][][]uint64, len(inWide))
			for _, in := range k.Inputs {
				rows[in.Name] = transpose.ToVerticalWide(inWide[in.Name], in.Width, lanes)
			}
			res, err := k.RunRowsUnderFault(rows, lanes, cfg, seed+int64(ci)<<16+int64(trial))
			if err != nil {
				return nil, err
			}
			pt.Injected.Add(res.Faults)
			got := make(map[string][][]uint64, len(k.Outputs))
			for _, o := range k.Outputs {
				got[o.Name] = transpose.FromVerticalWide(res.Rows[o.Name], o.Width, lanes)
			}
			corrupted := false
			for l := 0; l < lanes; l++ {
				ref := make(map[string]*big.Int, len(k.Inputs))
				for name, vals := range inWide {
					ref[name] = limbsToBig(vals[l])
				}
				want, err := k.Graph.Eval(ref)
				if err != nil {
					return nil, err
				}
				for _, out := range k.Outputs {
					if limbsToBig(got[out.Name][l]).Cmp(want[out.Name]) != 0 {
						pt.LaneErrors[out.Name]++
						corrupted = true
					}
				}
			}
			if corrupted {
				pt.SDCRuns++
			}
			pt.Runs++
		}
		for name, n := range pt.LaneErrors {
			pt.LaneErrorRate[name] = float64(n) / float64(pt.Runs*lanes)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
