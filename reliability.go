package chopper

import (
	"context"
	"math/big"
	"math/rand"

	"chopper/internal/fault"
	"chopper/internal/pool"
	"chopper/internal/transpose"
)

// FaultConfig parameterizes the deterministic DRAM fault models (TRA
// charge-sharing flips, AAP copy corruption, stuck-at bitline columns and
// retention decay). See the fault package documentation for the model and
// seed semantics; the zero value injects nothing.
type FaultConfig = fault.Config

// FaultCounts tallies injected fault events by model.
type FaultCounts = fault.Counts

// StuckColumn describes a permanently defective bitline for
// FaultConfig.StuckColumns.
type StuckColumn = fault.StuckColumn

// ReliabilityPoint is the measured behavior of a kernel under one fault
// configuration.
type ReliabilityPoint struct {
	// Config is the fault configuration this point was measured at.
	Config FaultConfig
	// Runs is the number of random-input runs executed.
	Runs int
	// SDCRuns counts runs with silent data corruption: at least one
	// output lane differed from the reference dataflow semantics.
	SDCRuns int
	// LaneErrors counts corrupted lanes per output, summed over runs.
	LaneErrors map[string]int
	// LaneErrorRate is LaneErrors normalized by Runs*lanes: the
	// probability that a given lane of that output is wrong.
	LaneErrorRate map[string]float64
	// Injected totals the fault events injected across all runs.
	Injected FaultCounts
	// Recovery aggregates the self-healing layer's activity across all
	// runs (all-zero when Options.Recovery is disabled).
	Recovery RecoveryStats
}

// SDCRate is the fraction of runs that silently corrupted data.
func (p ReliabilityPoint) SDCRate() float64 {
	if p.Runs == 0 {
		return 0
	}
	return float64(p.SDCRuns) / float64(p.Runs)
}

// ReliabilityReport is the output of the reliability harness: the kernel's
// blast radius under a grid of fault configurations, plus its fault-free
// makespan from the DRAM timing model (compare a hardened and an
// unhardened kernel's TimeNs to quantify the TMR latency overhead).
type ReliabilityReport struct {
	// Lanes is the SIMD width each run used.
	Lanes int
	// TimeNs is the fault-free single-subarray makespan of the kernel.
	TimeNs float64
	// Points holds one measurement per requested fault configuration.
	Points []ReliabilityPoint
}

// Reliability measures the kernel under every fault configuration in cfgs:
// for each, `trials` runs over random inputs (64 lanes each, reproducible
// from seed) execute on the faulty functional simulator and every output
// lane is compared bit-exactly against the reference dataflow semantics.
// Unlike VerifyUnderFault, which stops at the first discrepancy, this
// counts all of them — it is the measurement harness behind the
// reliability sweeps in internal/bench.
//
// The cfgs x trials grid fans out across GOMAXPROCS workers; every cell
// derives its inputs and fault pattern from (seed, cfg index, trial)
// alone, so the report is byte-identical at any worker count. Use
// ReliabilityParallel to pin the worker count.
func (k *Kernel) Reliability(trials int, seed int64, cfgs []FaultConfig) (*ReliabilityReport, error) {
	return k.ReliabilityParallel(trials, seed, cfgs, 0)
}

// relCell is the outcome of one (fault config, trial) grid cell.
type relCell struct {
	laneErrors map[string]int
	corrupted  bool
	injected   FaultCounts
	recovery   RecoveryStats
}

// ReliabilityParallel is Reliability with an explicit worker count (<= 0
// means GOMAXPROCS). Any worker count produces the same report.
func (k *Kernel) ReliabilityParallel(trials int, seed int64, cfgs []FaultConfig, workers int) (rep *ReliabilityReport, err error) {
	return k.ReliabilityCtx(nil, trials, seed, cfgs, workers)
}

// ReliabilityCtx is ReliabilityParallel under the guard layer: workers
// observe ctx between grid cells, so a canceled or deadline-expired
// context stops the sweep promptly with ErrCanceled/ErrDeadline and a nil
// report — a partially measured grid is never returned as a complete one.
func (k *Kernel) ReliabilityCtx(ctx context.Context, trials int, seed int64, cfgs []FaultConfig, workers int) (rep *ReliabilityReport, err error) {
	defer recoverToError(&err)
	if trials <= 0 {
		return nil, optionsErrf("trials must be positive, have %d", trials)
	}
	const lanes = 64
	rep = &ReliabilityReport{Lanes: lanes}

	// Fault-free timing reference.
	rng := rand.New(rand.NewSource(seed))
	base := randWideInputs(rng, k.Inputs, lanes)
	k.clampAnnotated(base)
	baseRows := make(map[string][][]uint64, len(base))
	for _, in := range k.Inputs {
		baseRows[in.Name] = transpose.ToVerticalWide(base[in.Name], in.Width, lanes)
	}
	res, err := k.runRows(ctx, baseRows, lanes, nil)
	if err != nil {
		return nil, err
	}
	rep.TimeNs = res.TimeNs

	// One pool job per (cfg, trial) cell; cell j writes only cells[j], so
	// the merge below sees the same data regardless of scheduling. Cells
	// execute on pooled simulation machines (machinePool) and pooled fault
	// injectors (injectorPool), so a sweep's steady-state cost is the
	// functional replay itself, not per-trial allocation.
	cells := make([]relCell, len(cfgs)*trials)
	err = pool.RunCtx(ctx, workers, len(cells), func(j int) error {
		ci, trial := j/trials, j%trials
		cfg := cfgs[ci]
		trng := rand.New(rand.NewSource(trialSeed(seed, j)))
		inWide := randWideInputs(trng, k.Inputs, lanes)
		k.clampAnnotated(inWide)
		rows := make(map[string][][]uint64, len(inWide))
		for _, in := range k.Inputs {
			rows[in.Name] = transpose.ToVerticalWide(inWide[in.Name], in.Width, lanes)
		}
		res, err := k.runRowsUnderFault(ctx, rows, lanes, cfg, seed+int64(ci)<<16+int64(trial))
		if err != nil {
			return err
		}
		cell := relCell{laneErrors: make(map[string]int, len(k.Outputs)), injected: res.Faults, recovery: res.RecoveryStats}
		got := make(map[string][][]uint64, len(k.Outputs))
		for _, o := range k.Outputs {
			got[o.Name] = transpose.FromVerticalWide(res.Rows[o.Name], o.Width, lanes)
		}
		for l := 0; l < lanes; l++ {
			ref := make(map[string]*big.Int, len(k.Inputs))
			for name, vals := range inWide {
				ref[name] = limbsToBig(vals[l])
			}
			want, err := k.Graph.Eval(ref)
			if err != nil {
				return err
			}
			for _, out := range k.Outputs {
				if limbsToBig(got[out.Name][l]).Cmp(want[out.Name]) != 0 {
					cell.laneErrors[out.Name]++
					cell.corrupted = true
				}
			}
		}
		cells[j] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ci, cfg := range cfgs {
		pt := ReliabilityPoint{
			Config:        cfg,
			LaneErrors:    make(map[string]int, len(k.Outputs)),
			LaneErrorRate: make(map[string]float64, len(k.Outputs)),
		}
		for trial := 0; trial < trials; trial++ {
			cell := cells[ci*trials+trial]
			pt.Injected.Add(cell.injected)
			pt.Recovery.Add(cell.recovery)
			for name, n := range cell.laneErrors {
				pt.LaneErrors[name] += n
			}
			if cell.corrupted {
				pt.SDCRuns++
			}
			pt.Runs++
		}
		for name, n := range pt.LaneErrors {
			pt.LaneErrorRate[name] = float64(n) / float64(pt.Runs*lanes)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
