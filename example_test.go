package chopper_test

import (
	"fmt"
	"log"

	chopper "chopper"
)

// Compile a dataflow program and run it on the simulated PUD hardware:
// each slice element is one SIMD lane (one DRAM bitline).
func ExampleCompile() {
	src := `
node main(a: u8, b: u8) returns (sum: u8, bigger: u1)
let
  sum = a + b;
  bigger = a > b;
tel`
	k, err := chopper.Compile(src, chopper.Options{Target: chopper.SIMDRAM})
	if err != nil {
		log.Fatal(err)
	}
	out, err := k.Run(map[string][]uint64{
		"a": {10, 200, 7},
		"b": {32, 100, 7},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out["sum"], out["bigger"])
	// Output: [42 44 14] [0 1 0]
}

// Construct a kernel programmatically — no DSL text — and verify it
// against the reference semantics.
func ExampleNewBuilder() {
	b := chopper.NewBuilder()
	x := b.Input("x", 16)
	y := b.Input("y", 16)
	diff := b.AbsDiff(x, y)
	b.Output("near", b.Lt(diff, b.Const(10, 16)))

	k, err := b.Compile(chopper.Options{Target: chopper.Ambit})
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Verify(2, 1); err != nil {
		log.Fatal(err)
	}
	out, err := k.Run(map[string][]uint64{
		"x": {100, 100},
		"y": {105, 500},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out["near"])
	// Output: [1 0]
}

// Compare CHOPPER against the hands-tuned SIMDRAM methodology on the same
// program: same results, smaller program.
func ExampleCompileBaseline() {
	src := "node main(a: u8) returns (z: u8) let z = a * 3 + 1; tel"
	opts := chopper.Options{Target: chopper.Ambit}
	ck, err := chopper.Compile(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	bk, err := chopper.CompileBaseline(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CHOPPER shorter:", len(ck.Prog().Ops) < len(bk.Prog().Ops))

	in := map[string][]uint64{"a": {0, 1, 80}}
	co, _ := ck.Run(in, 3)
	bo, _ := bk.Run(in, 3)
	fmt.Println(co["z"], bo["z"])
	// Output:
	// CHOPPER shorter: true
	// [1 4 241] [1 4 241]
}
