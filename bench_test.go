package chopper_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment on a representative workload
// subset (the full 16-workload sweep is `chopperbench -exp all`) and
// reports the paper's headline quantity as a custom metric:
//
//	BenchmarkFig9   — CHOPPER vs hands-tuned speedup (fit + spill regimes)
//	BenchmarkFig10  — full-vs-bitslice breakdown speedup
//	BenchmarkFig11  — subarray-size robustness
//	BenchmarkFig12  — VIRCOE awareness x SALP
//	BenchmarkTable3 — lines-of-code reduction
//
// Compilation-pipeline micro-benchmarks follow (compile throughput for
// each stage), since compiler speed is itself a deliverable.

import (
	"chopper"
	"testing"

	"chopper/internal/bench"
	"chopper/internal/bitslice"
	"chopper/internal/dfg"
	"chopper/internal/dram"
	"chopper/internal/dsl"
	"chopper/internal/isa"
	"chopper/internal/logic"
	"chopper/internal/obs"
	"chopper/internal/typecheck"
	"chopper/internal/vircoe"
	"chopper/internal/workloads"
)

// benchSel returns the workload subset for benchmarks: one fit-regime and
// one spill-regime configuration per domain under -short, quick set
// otherwise.
func benchSel(b *testing.B) bench.Selection {
	if testing.Short() {
		return bench.QuickWorkloads()
	}
	var sel bench.Selection
	for _, d := range workloads.Domains {
		sel = append(sel, workloads.Build(d, workloads.Configs[d][0]))
		sel = append(sel, workloads.Build(d, workloads.Configs[d][3]))
	}
	return sel
}

func BenchmarkFig9(b *testing.B) {
	sel := benchSel(b)
	h := bench.NewHarness()
	var fitGeo, spillGeo float64
	for i := 0; i < b.N; i++ {
		t, err := h.Fig9Speedups(sel)
		if err != nil {
			b.Fatal(err)
		}
		// Split the geometric means by regime.
		fit := &bench.Table{}
		spill := &bench.Table{}
		for _, r := range t.Rows {
			spec, _ := workloads.Get(r.Workload)
			s, err := h.SpillsInBaseline(spec, isa.Ambit)
			if err != nil {
				b.Fatal(err)
			}
			if s {
				spill.Rows = append(spill.Rows, bench.Row{Workload: r.Workload, Series: "x", Value: r.Value})
			} else {
				fit.Rows = append(fit.Rows, bench.Row{Workload: r.Workload, Series: "x", Value: r.Value})
			}
		}
		fitGeo = fit.GeoMean("x")
		spillGeo = spill.GeoMean("x")
	}
	b.ReportMetric(fitGeo, "fit-speedup")
	b.ReportMetric(spillGeo, "spill-speedup")
}

func BenchmarkFig10(b *testing.B) {
	sel := benchSel(b)
	h := bench.NewHarness()
	var gain float64
	for i := 0; i < b.N; i++ {
		t, err := h.Fig10(sel)
		if err != nil {
			b.Fatal(err)
		}
		gain = t.GeoMean("rename") / t.GeoMean("bitslice")
	}
	b.ReportMetric(gain, "full-vs-bitslice")
}

func BenchmarkFig11(b *testing.B) {
	sel := benchSel(b)
	h := bench.NewHarness()
	var worst float64
	for i := 0; i < b.N; i++ {
		t, err := h.Fig11(sel)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, rows := range []string{"512", "1024", "2048"} {
			g := t.GeoMean("CHOPPER-"+rows) / t.GeoMean("hand-"+rows)
			if worst == 0 || g < worst {
				worst = g
			}
		}
	}
	b.ReportMetric(worst, "min-speedup-across-sizes")
}

func BenchmarkFig12(b *testing.B) {
	sel := benchSel(b)
	h := bench.NewHarness()
	var amplify float64
	for i := 0; i < b.N; i++ {
		t, err := h.Fig12(sel)
		if err != nil {
			b.Fatal(err)
		}
		amplify = t.GeoMean("rename/sub/SALP") / t.GeoMean("rename/bank/noSALP")
	}
	b.ReportMetric(amplify, "salp-amplification")
}

func BenchmarkTable3(b *testing.B) {
	h := bench.NewHarness()
	var reduction float64
	for i := 0; i < b.N; i++ {
		t, err := h.Table3()
		if err != nil {
			b.Fatal(err)
		}
		reduction = t.GeoMean("hand-single") / t.GeoMean("CHOPPER")
	}
	b.ReportMetric(reduction, "loc-reduction")
}

// --- compiler-stage micro-benchmarks ---

const benchKernel = `
node main(a: u16, b: u16, pred: u16) returns (z: u16)
vars s: u16, d: u16, f: u1;
let
  s = a + b;
  d = absdiff(a, b);
  f = a > pred;
  z = f ? s : d;
tel`

func BenchmarkCompileFrontend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := dsl.Parse(benchKernel)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := typecheck.Check(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileBitslice(b *testing.B) {
	prog, _ := dsl.Parse(benchKernel)
	ch, _ := typecheck.Check(prog)
	g, err := dfg.Build(ch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitslice.Lower(g, bitslice.Options{Fold: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileFull(b *testing.B) {
	for _, arch := range isa.AllArchs {
		b.Run(arch.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chopper.Compile(benchKernel, chopper.Options{Target: arch}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompileWorkload(b *testing.B) {
	spec := workloads.Build("SW", 128)
	for i := 0; i < b.N; i++ {
		if _, err := chopper.Compile(spec.Src, chopper.Options{Target: chopper.Ambit}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleGates(b *testing.B) {
	prog, _ := dsl.Parse(benchKernel)
	ch, _ := typecheck.Check(prog)
	g, _ := dfg.Build(ch)
	net, _ := bitslice.Lower(g, bitslice.Options{Fold: true})
	leg, _ := logic.Legalize(net, isa.Ambit, logic.BuilderOptions{Fold: true, CSE: true})
	leg = leg.DCE()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.ScheduleGates(leg, true)
	}
}

func BenchmarkVircoeEmit(b *testing.B) {
	k, err := chopper.Compile(benchKernel, chopper.Options{Target: chopper.Ambit})
	if err != nil {
		b.Fatal(err)
	}
	g := k.Opts.Geometry
	pls, err := vircoe.Placements(g, 16)
	if err != nil {
		b.Fatal(err)
	}
	timing := dram.TimingFor(chopper.Ambit, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vircoe.Emit(k.Prog(), pls, vircoe.BankAware, timing)
	}
}

// --- parallel engine benchmarks ---
//
// The speedup claims of the parallel execution layer: verify/sweep trials
// fan out across the worker pool (compare workers=1 against workers=N at
// 4+ cores for the >=2x wall-clock win; results are byte-identical either
// way), and a warm kernel cache turns repeat compiles into map lookups.

func BenchmarkVerifyUnderFaultWorkers(b *testing.B) {
	k, err := chopper.Compile(benchKernel, chopper.Options{Target: chopper.Ambit, Harden: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := chopper.FaultConfig{TRAFlipRate: 1, MaxFaults: 1}
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		name := "max"
		if workers == 1 {
			name = "1"
		}
		b.Run("workers="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := k.VerifyUnderFaultParallel(32, 7, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReliabilitySweepWorkers(b *testing.B) {
	rates := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, workers := range []int{1, 0} {
		name := "max"
		if workers == 1 {
			name = "1"
		}
		b.Run("workers="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.ReliabilitySweepParallel(benchKernel, isa.Ambit, rates, 8, 7, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompileCached(b *testing.B) {
	cache := chopper.NewKernelCache(16)
	opts := chopper.Options{Target: chopper.Ambit, Cache: cache}
	if _, err := chopper.Compile(benchKernel, opts); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chopper.Compile(benchKernel, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := cache.Stats()
	b.ReportMetric(float64(s.Hits)/float64(s.Hits+s.Misses), "hit-rate")
}

func BenchmarkFunctionalSim(b *testing.B) {
	k, err := chopper.Compile(benchKernel, chopper.Options{Target: chopper.Ambit})
	if err != nil {
		b.Fatal(err)
	}
	lanes := 256
	in := map[string][]uint64{
		"a": make([]uint64, lanes), "b": make([]uint64, lanes), "pred": make([]uint64, lanes),
	}
	for l := 0; l < lanes; l++ {
		in["a"][l] = uint64(l * 7 % 65536)
		in["b"][l] = uint64(l * 13 % 65536)
		in["pred"][l] = 32768
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Run(in, lanes); err != nil {
			b.Fatal(err)
		}
	}
}
