package chopper

import (
	"fmt"
	"math/big"

	"chopper/internal/dfg"
)

// Builder constructs kernels programmatically, without DSL source — the
// integration surface Section VI-C of the paper envisions, where dataflow
// systems hand sub-graphs straight to the PUD compiler.
//
//	b := chopper.NewBuilder()
//	a := b.Input("a", 8)
//	c := b.Add(a, b.Const(42, 8))
//	b.Output("z", c)
//	k, err := b.Compile(chopper.Options{Target: chopper.Ambit})
//
// Width rules match the language: binary operations take equal-width
// operands (use Resize to convert); comparisons yield 1-bit values; all
// arithmetic is modular. Errors accumulate and surface at Compile, so
// construction code needs no per-call error handling.
type Builder struct {
	g    dfg.Graph
	errs []error
}

// Value is a handle to a dataflow value under construction.
type Value struct {
	id    dfg.ValueID
	width int
}

// Width returns the value's bit width.
func (v Value) Width() int { return v.width }

// NewBuilder creates an empty builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) errf(format string, args ...interface{}) Value {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	// Return a placeholder so construction can continue; Compile fails.
	return Value{id: 0, width: 1}
}

func (b *Builder) add(v dfg.Value) Value {
	id := dfg.ValueID(len(b.g.Values))
	b.g.Values = append(b.g.Values, v)
	return Value{id: id, width: v.Width}
}

// Input declares a named input of the given width.
func (b *Builder) Input(name string, width int) Value {
	if width < 1 || width > 2048 {
		return b.errf("chopper: input %q has width %d", name, width)
	}
	for _, in := range b.g.Inputs {
		if b.g.Values[in].Name == name {
			return b.errf("chopper: duplicate input %q", name)
		}
	}
	v := b.add(dfg.Value{Kind: dfg.OpInput, Width: width, Name: name})
	b.g.Inputs = append(b.g.Inputs, v.id)
	return v
}

// Const builds a width-bit constant from the low bits of c.
func (b *Builder) Const(c uint64, width int) Value {
	return b.ConstBig(new(big.Int).SetUint64(c), width)
}

// ConstBig builds a constant of arbitrary width.
func (b *Builder) ConstBig(c *big.Int, width int) Value {
	if width < 1 || width > 2048 {
		return b.errf("chopper: constant width %d out of range", width)
	}
	if c.Sign() < 0 || c.BitLen() > width {
		return b.errf("chopper: constant %v does not fit in %d bits", c, width)
	}
	return b.add(dfg.Value{Kind: dfg.OpConst, Width: width, Imm: new(big.Int).Set(c)})
}

func (b *Builder) check(v Value) bool {
	return int(v.id) < len(b.g.Values)
}

func (b *Builder) binary(kind dfg.OpKind, x, y Value, resultWidth int) Value {
	if !b.check(x) || !b.check(y) {
		return b.errf("chopper: %s over invalid values", kind)
	}
	if x.width != y.width {
		return b.errf("chopper: %s operand widths differ (%d vs %d); use Resize", kind, x.width, y.width)
	}
	return b.add(dfg.Value{Kind: kind, Width: resultWidth, Args: []dfg.ValueID{x.id, y.id}})
}

// Arithmetic and bitwise operations (modular, equal widths).
func (b *Builder) Add(x, y Value) Value { return b.binary(dfg.OpAdd, x, y, x.width) }

// Sub returns x - y.
func (b *Builder) Sub(x, y Value) Value { return b.binary(dfg.OpSub, x, y, x.width) }

// Mul returns x * y modulo 2^width.
func (b *Builder) Mul(x, y Value) Value { return b.binary(dfg.OpMul, x, y, x.width) }

// And, Or, Xor are bitwise.
func (b *Builder) And(x, y Value) Value { return b.binary(dfg.OpAnd, x, y, x.width) }

// Or returns x | y.
func (b *Builder) Or(x, y Value) Value { return b.binary(dfg.OpOr, x, y, x.width) }

// Xor returns x ^ y.
func (b *Builder) Xor(x, y Value) Value { return b.binary(dfg.OpXor, x, y, x.width) }

// Not returns ^x; Neg returns -x.
func (b *Builder) Not(x Value) Value {
	if !b.check(x) {
		return b.errf("chopper: Not over invalid value")
	}
	return b.add(dfg.Value{Kind: dfg.OpNot, Width: x.width, Args: []dfg.ValueID{x.id}})
}

// Neg returns the two's-complement negation.
func (b *Builder) Neg(x Value) Value {
	if !b.check(x) {
		return b.errf("chopper: Neg over invalid value")
	}
	return b.add(dfg.Value{Kind: dfg.OpNeg, Width: x.width, Args: []dfg.ValueID{x.id}})
}

// Shl and Shr shift by a constant amount.
func (b *Builder) Shl(x Value, k int) Value { return b.shift(dfg.OpShl, x, k) }

// Shr is the logical right shift.
func (b *Builder) Shr(x Value, k int) Value { return b.shift(dfg.OpShr, x, k) }

func (b *Builder) shift(kind dfg.OpKind, x Value, k int) Value {
	if !b.check(x) || k < 0 {
		return b.errf("chopper: bad shift")
	}
	return b.add(dfg.Value{Kind: kind, Width: x.width, Args: []dfg.ValueID{x.id}, Imm: big.NewInt(int64(k))})
}

// Comparisons (unsigned unless suffixed S) yield 1-bit values.
func (b *Builder) Eq(x, y Value) Value  { return b.binary(dfg.OpEq, x, y, 1) }
func (b *Builder) Ne(x, y Value) Value  { return b.binary(dfg.OpNe, x, y, 1) }
func (b *Builder) Lt(x, y Value) Value  { return b.binary(dfg.OpLtU, x, y, 1) }
func (b *Builder) Gt(x, y Value) Value  { return b.binary(dfg.OpGtU, x, y, 1) }
func (b *Builder) Le(x, y Value) Value  { return b.binary(dfg.OpLeU, x, y, 1) }
func (b *Builder) Ge(x, y Value) Value  { return b.binary(dfg.OpGeU, x, y, 1) }
func (b *Builder) LtS(x, y Value) Value { return b.binary(dfg.OpLtS, x, y, 1) }
func (b *Builder) GeS(x, y Value) Value { return b.binary(dfg.OpGeS, x, y, 1) }

// Mux returns c ? t : f (c must be 1 bit wide).
func (b *Builder) Mux(c, t, f Value) Value {
	if !b.check(c) || !b.check(t) || !b.check(f) {
		return b.errf("chopper: Mux over invalid values")
	}
	if c.width != 1 {
		return b.errf("chopper: Mux condition is %d bits wide, want 1", c.width)
	}
	if t.width != f.width {
		return b.errf("chopper: Mux arm widths differ (%d vs %d)", t.width, f.width)
	}
	return b.add(dfg.Value{Kind: dfg.OpMux, Width: t.width, Args: []dfg.ValueID{c.id, t.id, f.id}})
}

// Min, Max, AbsDiff over unsigned operands.
func (b *Builder) Min(x, y Value) Value     { return b.binary(dfg.OpMin, x, y, x.width) }
func (b *Builder) Max(x, y Value) Value     { return b.binary(dfg.OpMax, x, y, x.width) }
func (b *Builder) AbsDiff(x, y Value) Value { return b.binary(dfg.OpAbsDiff, x, y, x.width) }

// Div and Mod are unsigned division and remainder (division by zero
// yields all-ones / the dividend).
func (b *Builder) Div(x, y Value) Value { return b.binary(dfg.OpDivU, x, y, x.width) }

// Mod returns x %% y.
func (b *Builder) Mod(x, y Value) Value { return b.binary(dfg.OpModU, x, y, x.width) }

// PopCount returns the number of set bits (result width = operand width).
func (b *Builder) PopCount(x Value) Value {
	if !b.check(x) {
		return b.errf("chopper: PopCount over invalid value")
	}
	return b.add(dfg.Value{Kind: dfg.OpPopCount, Width: x.width, Args: []dfg.ValueID{x.id}})
}

// Resize zero-extends or truncates to width bits.
func (b *Builder) Resize(x Value, width int) Value {
	if !b.check(x) || width < 1 || width > 2048 {
		return b.errf("chopper: bad Resize to %d bits", width)
	}
	return b.add(dfg.Value{Kind: dfg.OpResize, Width: width, Args: []dfg.ValueID{x.id}})
}

// Output registers v as a named kernel output.
func (b *Builder) Output(name string, v Value) {
	if !b.check(v) {
		b.errf("chopper: output %q of invalid value", name)
		return
	}
	for _, n := range b.g.OutputNames {
		if n == name {
			b.errf("chopper: duplicate output %q", name)
			return
		}
	}
	b.g.Outputs = append(b.g.Outputs, v.id)
	b.g.OutputNames = append(b.g.OutputNames, name)
}

// Err returns the accumulated construction errors (nil if none).
func (b *Builder) Err() error {
	if len(b.errs) == 0 {
		return nil
	}
	return b.errs[0]
}

// Compile finalizes the graph and compiles it.
func (b *Builder) Compile(opts Options) (*Kernel, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	if len(b.g.Outputs) == 0 {
		return nil, fmt.Errorf("chopper: builder has no outputs")
	}
	g := b.g
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return CompileGraph(&g, opts)
}

// CompileBaseline compiles the graph with the hands-tuned methodology.
func (b *Builder) CompileBaseline(opts Options) (*Kernel, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	if len(b.g.Outputs) == 0 {
		return nil, fmt.Errorf("chopper: builder has no outputs")
	}
	g := b.g
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return CompileBaselineGraph(&g, opts)
}
