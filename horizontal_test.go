package chopper

import (
	"strings"
	"testing"
)

func TestHorizontalBitwiseKernel(t *testing.T) {
	// Bulk bitwise over packed rows: the Ambit use case.
	src := `
node main(a: u8, b: u8, m: u8) returns (z: u8)
let
  z = (a & m) ^ (b | ~m);
tel`
	k, err := CompileHorizontal(src, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	// Each "lane" is one packed bit; no transposition happens.
	for _, in := range k.Inputs {
		if in.Width != 1 {
			t.Fatalf("input %s width %d, want 1 (one row per operand)", in.Name, in.Width)
		}
	}
	// One row per operand: exactly 3 writes, 1 read.
	if k.Stats().Writes != 3 {
		t.Errorf("writes = %d, want 3 (one row per operand)", k.Stats().Writes)
	}
	if k.Stats().Reads != 1 {
		t.Errorf("reads = %d, want 1", k.Stats().Reads)
	}

	lanes := 128 // 128 packed bits = 16 8-bit elements
	mk := func(seed uint64) []uint64 {
		v := make([]uint64, lanes)
		for i := range v {
			v[i] = (seed >> uint(i%64)) & 1
		}
		return v
	}
	as, bs, ms := mk(0xDEADBEEFCAFEF00D), mk(0x0123456789ABCDEF), mk(0xF0F0F0F0F0F0F0F0)
	out, err := k.Run(map[string][]uint64{"a": as, "b": bs, "m": ms}, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < lanes; l++ {
		want := (as[l] & ms[l]) ^ (bs[l] | (^ms[l] & 1))
		if out["z"][l] != want&1 {
			t.Fatalf("bit %d: z=%d want %d", l, out["z"][l], want&1)
		}
	}
}

func TestHorizontalUniformConstants(t *testing.T) {
	// All-ones and all-zero constants are fine (they are the C-group).
	src := "node main(a: u8) returns (z: u8) let z = a ^ 0xFF; tel"
	k, err := CompileHorizontal(src, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.Run(map[string][]uint64{"a": {1, 0, 1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for l, a := range []uint64{1, 0, 1} {
		if out["z"][l] != a^1 {
			t.Fatalf("bit %d: %d", l, out["z"][l])
		}
	}
}

func TestHorizontalRejectsArithmetic(t *testing.T) {
	cases := map[string]string{
		"add":      "node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel",
		"cmp":      "node main(a: u8, b: u8) returns (z: u1) let z = a < b; tel",
		"mux":      "node main(c: u1, a: u8, b: u8) returns (z: u8) let z = mux(c, a, b); tel",
		"non-unif": "node main(a: u8) returns (z: u8) let z = a ^ 0x5A; tel",
	}
	for name, src := range cases {
		if _, err := CompileHorizontal(src, Options{Target: Ambit}); err == nil {
			t.Errorf("%s: accepted in horizontal layout", name)
		} else if name != "non-unif" && !strings.Contains(err.Error(), "vertical layout") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

func TestHorizontalFewerOpsThanVertical(t *testing.T) {
	// The point of the layout: a bitwise kernel over u32 costs one gate
	// per operation instead of 32.
	src := "node main(a: u32, b: u32) returns (z: u32) let z = a & b; tel"
	h, err := CompileHorizontal(src, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Compile(src, Options{Target: Ambit})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Prog().Ops)*8 > len(v.Prog().Ops) {
		t.Errorf("horizontal %d ops vs vertical %d: packing advantage lost",
			len(h.Prog().Ops), len(v.Prog().Ops))
	}
}
