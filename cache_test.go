package chopper

import (
	"sync"
	"testing"
)

const cacheSrc = `
node main(a: u8, b: u8) returns (s: u8)
  let s = a + b;
tel`

func TestCacheHitReturnsSameKernel(t *testing.T) {
	c := NewKernelCache(8)
	opts := Options{Target: Ambit, Cache: c}
	k1, err := Compile(cacheSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Compile(cacheSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("repeat compile did not return the cached *Kernel")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("counters %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	// A cached kernel is fully usable.
	if err := k2.Verify(2, 9); err != nil {
		t.Fatal(err)
	}
}

func TestCacheKeyCoversOptions(t *testing.T) {
	c := NewKernelCache(16)
	base := Options{Target: Ambit, Cache: c}
	if _, err := Compile(cacheSrc, base); err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Target: SIMDRAM, Cache: c},
		{Target: Ambit, Harden: true, Cache: c},
		base.WithOpt(OptBitslice), // Cache rides along in the copy
	}
	for i, o := range variants {
		before := c.Stats().Entries
		if _, err := Compile(cacheSrc, o); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().Entries; got != before+1 {
			t.Errorf("variant %d did not get its own cache entry (%d -> %d)", i, before, got)
		}
	}
	// Different pipelines must not collide either.
	before := c.Stats().Entries
	if _, err := CompileBaseline(cacheSrc, Options{Target: Ambit, Cache: c}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Entries; got != before+1 {
		t.Error("baseline compile collided with the CHOPPER pipeline entry")
	}
}

func TestCacheNormalizesSource(t *testing.T) {
	c := NewKernelCache(8)
	opts := Options{Target: Ambit, Cache: c}
	k1, err := Compile("node main(a: u8) returns (z: u8) let z = a + 1; tel", opts)
	if err != nil {
		t.Fatal(err)
	}
	// CRLF line endings and trailing whitespace hit the same entry.
	k2, err := Compile("node main(a: u8) returns (z: u8) let z = a + 1; tel \r\n", opts)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("formatting-only difference missed the cache")
	}
}

func TestCacheFailedCompileNotCached(t *testing.T) {
	c := NewKernelCache(8)
	opts := Options{Target: Ambit, Cache: c}
	if _, err := Compile("not a program", opts); err == nil {
		t.Fatal("bad program compiled")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("failed compile left %d cache entries", s.Entries)
	}
}

func TestCacheConcurrentCompile(t *testing.T) {
	// Server shape: many goroutines compiling the same few sources through
	// the shared cache. Checked further by `go test -race`.
	c := NewKernelCache(4)
	srcs := []string{
		"node main(a: u8) returns (z: u8) let z = a + 1; tel",
		"node main(a: u8) returns (z: u8) let z = a - 1; tel",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k, err := Compile(srcs[(g+i)%len(srcs)], Options{Target: Ambit, Cache: c})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := k.Run(map[string][]uint64{"a": {uint64(i)}}, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits == 0 {
		t.Fatalf("no cache hits across 80 compiles of 2 sources: %+v", s)
	}
}

// TestCacheSingleflightCompile pins the thundering-herd contract at the
// chopper level: N goroutines compiling the identical (source, Options)
// pair through one shared cache perform exactly one pipeline run — the
// duplicated work VerifyParallel-style fan-outs used to do — and all
// share the same *Kernel. The accounting identity (1 miss, N-1
// hits+dedups) holds for every interleaving, so the test is exact, not
// probabilistic.
func TestCacheSingleflightCompile(t *testing.T) {
	const n = 12
	c := NewKernelCache(8)
	// A 16-bit multiply compiles slowly enough that concurrent callers
	// genuinely overlap; correctness does not depend on it.
	src := "node main(a: u16, b: u16) returns (z: u16) let z = a * b; tel"
	opts := Options{Target: Ambit, Cache: c}
	kernels := make([]*Kernel, n)
	var start, wg sync.WaitGroup
	start.Add(n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Done()
			start.Wait() // fire together
			k, err := Compile(src, opts)
			if err != nil {
				t.Error(err)
				return
			}
			kernels[g] = k
		}(g)
	}
	wg.Wait()
	for g := 1; g < n; g++ {
		if kernels[g] != kernels[0] {
			t.Fatalf("goroutine %d got a different *Kernel", g)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("%d pipeline runs for %d identical concurrent compiles, want exactly 1 (stats %+v)", s.Misses, n, s)
	}
	if s.Hits+s.Dedups != n-1 {
		t.Fatalf("accounting drift: %+v, want hits+dedups = %d", s, n-1)
	}
}

// TestCacheOutcomeReporting pins the CacheOutcome values the server
// surfaces per request.
func TestCacheOutcomeReporting(t *testing.T) {
	c := NewKernelCache(8)
	opts := Options{Target: Ambit, Cache: c}
	if _, out, err := CompileCtxCached(nil, cacheSrc, opts); err != nil || out != CacheMiss {
		t.Fatalf("first compile outcome %v (err %v), want miss", out, err)
	}
	if _, out, err := CompileCtxCached(nil, cacheSrc, opts); err != nil || out != CacheHit {
		t.Fatalf("repeat compile outcome %v (err %v), want hit", out, err)
	}
	if _, out, err := CompileCtxCached(nil, cacheSrc, Options{Target: Ambit}); err != nil || out != CacheNone {
		t.Fatalf("cache-less compile outcome %v (err %v), want none", out, err)
	}
	if _, out, err := CompileBaselineCached(cacheSrc, opts); err != nil || out != CacheMiss {
		t.Fatalf("baseline compile outcome %v (err %v), want miss (own pipeline key)", out, err)
	}
}

func TestSharedCacheIsWired(t *testing.T) {
	before := SharedCache().Stats()
	opts := Options{Target: Ambit, Cache: SharedCache()}
	src := "node main(a: u4) returns (z: u4) let z = a ^ 10:u4; tel"
	if _, err := Compile(src, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(src, opts); err != nil {
		t.Fatal(err)
	}
	after := SharedCache().Stats()
	if after.Hits < before.Hits+1 {
		t.Fatalf("shared cache saw no hit: %+v -> %+v", before, after)
	}
}
