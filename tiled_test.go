package chopper

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"chopper/internal/dram"
	"chopper/internal/vircoe"
	"chopper/internal/workloads"
)

// tinyGeom shrinks the subarray SIMD width so tiled tests stay fast: 64
// lanes per tile (8-byte rows), 4 banks.
func tinyGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, SubarraysPB: 4, RowsPerSub: 256, RowBytes: 8, ReservedRows: 18}
}

func TestRunTiledMatchesRunWide(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8, c: u1) let z = a + b; c = a < b; tel"
	k, err := Compile(src, Options{Target: Ambit, Geometry: tinyGeom()})
	if err != nil {
		t.Fatal(err)
	}
	lanes := 300 // 5 tiles of 64 lanes, last one partial
	aw := make([][]uint64, lanes)
	bw := make([][]uint64, lanes)
	for l := 0; l < lanes; l++ {
		aw[l] = []uint64{uint64(l*7) & 0xFF}
		bw[l] = []uint64{uint64(l*13+5) & 0xFF}
	}
	res, err := k.RunTiled(map[string][][]uint64{"a": aw, "b": bw}, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != 5 {
		t.Errorf("tiles = %d, want 5", res.Tiles)
	}
	if res.TimeNs <= 0 {
		t.Error("no time accounted")
	}
	for l := 0; l < lanes; l++ {
		wantZ := (aw[l][0] + bw[l][0]) & 0xFF
		var wantC uint64
		if aw[l][0] < bw[l][0] {
			wantC = 1
		}
		if res.Outputs["z"][l][0] != wantZ || res.Outputs["c"][l][0] != wantC {
			t.Fatalf("lane %d: z=%d/%d c=%d/%d", l, res.Outputs["z"][l][0], wantZ, res.Outputs["c"][l][0], wantC)
		}
	}
}

func TestRunTiledFasterThanImpliedSerial(t *testing.T) {
	// 4 tiles across 4 banks must finish in well under 4x one tile's time.
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a * b; tel"
	k, err := Compile(src, Options{Target: Ambit, Geometry: tinyGeom()})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(lanes int) float64 {
		aw := make([][]uint64, lanes)
		bw := make([][]uint64, lanes)
		for l := range aw {
			aw[l] = []uint64{uint64(l) & 0xFF}
			bw[l] = []uint64{uint64(l+3) & 0xFF}
		}
		res, err := k.RunTiled(map[string][][]uint64{"a": aw, "b": bw}, lanes)
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeNs
	}
	one := mk(64)
	four := mk(256)
	if four > 2.2*one {
		t.Errorf("4 tiles on 4 banks took %.0f ns vs %.0f ns for one: no overlap", four, one)
	}
}

func TestRunTiledRejectsOversizedData(t *testing.T) {
	k, err := Compile("node main(a: u8) returns (z: u8) let z = a + 1; tel",
		Options{Target: Ambit, Geometry: tinyGeom()})
	if err != nil {
		t.Fatal(err)
	}
	huge := tinyGeom().Banks*tinyGeom().SubarraysPB*tinyGeom().Bitlines() + 1
	if _, err := k.RunTiled(map[string][][]uint64{"a": make([][]uint64, huge)}, huge); err == nil {
		t.Error("oversized dataset accepted")
	}
	if _, err := k.RunTiled(map[string][][]uint64{"a": {{1}}}, 5); err == nil {
		t.Error("short input accepted")
	}
}

// shardGeom is tinyGeom over several channels: 64-lane tiles whose timing
// replay shards across 4 per-channel engines.
func shardGeom(channels int) dram.Geometry {
	g := tinyGeom()
	g.Channels = channels
	return g
}

// TestRunTiledGoldenSerialEquivalence pins the Channels=1 sharded path to
// the pre-sharding serial replay on the four paper workloads: one shard is
// the whole stream, so the makespan and every engine counter must be
// float-identical to a hand-built serial engine run over the same
// placements — not merely close.
func TestRunTiledGoldenSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four workload kernels tiled")
	}
	geom := dram.Geometry{Banks: 4, SubarraysPB: 8, RowsPerSub: 1024, RowBytes: 64, ReservedRows: 18}
	timing := dram.TimingFor(Ambit, geom)
	for _, name := range []string{"DenseNet-16", "WTC-64", "DiffGen-64", "SW-64"} {
		spec, ok := workloads.Get(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		k, err := Compile(spec.Src, Options{Target: Ambit, Geometry: geom})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lanes := 5*geom.Bitlines() - 37 // 5 tiles, last one partial
		in := make(map[string][][]uint64, len(k.Inputs))
		for _, op := range k.Inputs {
			vals := make([][]uint64, lanes)
			limbs := (op.Width + 63) / 64
			for l := range vals {
				v := make([]uint64, limbs)
				for i := range v {
					v[i] = uint64(l*7+i*13) * 0x9e3779b97f4a7c15
				}
				if r := op.Width % 64; r != 0 {
					v[limbs-1] &= (uint64(1) << uint(r)) - 1
				}
				vals[l] = v
			}
			in[op.Name] = vals
		}
		res, err := k.RunTiled(in, lanes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Channels != 1 {
			t.Fatalf("%s: %d shards on a 1-channel geometry", name, res.Channels)
		}

		// The reference replay: exactly what RunTiled did before sharding.
		pls, err := vircoe.Placements(geom, res.Tiles)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stream, emitStats := vircoe.Emit(k.prog, pls, vircoe.BankAware, timing)
		eng := dram.NewEngine(geom, timing, false)
		wantNs, err := eng.RunCtx(nil, stream, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TimeNs != wantNs {
			t.Errorf("%s: sharded makespan %v != serial %v", name, res.TimeNs, wantNs)
		}
		if res.Stats != eng.Stats() {
			t.Errorf("%s: sharded stats diverged:\n got %+v\nwant %+v", name, res.Stats, eng.Stats())
		}
		if res.Emit != emitStats {
			t.Errorf("%s: emitter stats diverged:\n got %+v\nwant %+v", name, res.Emit, emitStats)
		}
	}
}

// TestDeterminismRunTiledSharded repeats a Channels=4 tiled run and
// requires the full result — outputs, device/transfer/end-to-end times,
// merged engine and emitter stats — to be byte-identical, at any worker
// count (the CI race job reruns this under -cpu 1,4).
func TestDeterminismRunTiledSharded(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8, c: u1) let z = a + b; c = a < b; tel"
	k, err := Compile(src, Options{Target: Ambit, Geometry: shardGeom(4), SALP: true})
	if err != nil {
		t.Fatal(err)
	}
	lanes := 10*tinyGeom().Bitlines() - 7 // 10 tiles across 4 shards, uneven
	in := map[string][][]uint64{"a": make([][]uint64, lanes), "b": make([][]uint64, lanes)}
	for l := 0; l < lanes; l++ {
		in["a"][l] = []uint64{uint64(l*7) & 0xFF}
		in["b"][l] = []uint64{uint64(l*13+5) & 0xFF}
	}
	r1, err := k.RunTiled(in, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Channels != 4 {
		t.Fatalf("sharded over %d channels, want 4", r1.Channels)
	}
	r2, err := k.RunTiled(in, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Outputs, r2.Outputs) {
		t.Fatal("repeat sharded RunTiled outputs diverged")
	}
	if r1.TimeNs != r2.TimeNs || r1.TransferNs != r2.TransferNs ||
		r1.OverlapNs != r2.OverlapNs || r1.EndToEndNs != r2.EndToEndNs {
		t.Fatalf("repeat sharded RunTiled timing diverged: %+v vs %+v", r1, r2)
	}
	if r1.Stats != r2.Stats || r1.Emit != r2.Emit {
		t.Fatal("repeat sharded RunTiled stats diverged")
	}
	if r1.EndToEndNs != r1.TimeNs+r1.TransferNs-r1.OverlapNs {
		t.Fatalf("end-to-end identity broken: %+v", r1)
	}
}

// TestRunTiledShardedFasterThanSerial is the point of the sharding: with
// the banks oversubscribed (16 tiles on 4 banks at one channel), spreading
// the same tiles across 4 channels must cut the device makespan well below
// the serial replay's — and the end-to-end time, transfers included, with it.
func TestRunTiledShardedFasterThanSerial(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a * b; tel"
	mk := func(channels int) *TiledResult {
		k, err := Compile(src, Options{Target: Ambit, Geometry: shardGeom(channels)})
		if err != nil {
			t.Fatal(err)
		}
		lanes := 16 * tinyGeom().Bitlines()
		in := map[string][][]uint64{"a": make([][]uint64, lanes), "b": make([][]uint64, lanes)}
		for l := 0; l < lanes; l++ {
			in["a"][l] = []uint64{uint64(l) & 0xFF}
			in["b"][l] = []uint64{uint64(l+3) & 0xFF}
		}
		res, err := k.RunTiled(in, lanes)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := mk(1)
	sharded := mk(4)
	if !reflect.DeepEqual(serial.Outputs, sharded.Outputs) {
		t.Error("functional outputs depend on the channel count")
	}
	if sharded.TimeNs >= 0.5*serial.TimeNs {
		t.Errorf("4-channel makespan %.0f ns not well under serial %.0f ns", sharded.TimeNs, serial.TimeNs)
	}
	if sharded.EndToEndNs >= serial.EndToEndNs {
		t.Errorf("4-channel end-to-end %.0f ns not under serial %.0f ns", sharded.EndToEndNs, serial.EndToEndNs)
	}
}

// TestRunTiledBudgetShardIdentity: the dram-commands budget stop must be
// the same error — dimension, limit, count — at every channel count, even
// though the 4-channel replay never materializes the serial stream.
func TestRunTiledBudgetShardIdentity(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel"
	lanes := 4 * tinyGeom().Bitlines()
	in := map[string][][]uint64{"a": make([][]uint64, lanes), "b": make([][]uint64, lanes)}
	for l := 0; l < lanes; l++ {
		in["a"][l] = []uint64{uint64(l) & 0xFF}
		in["b"][l] = []uint64{uint64(l+1) & 0xFF}
	}
	var stops []error
	for _, channels := range []int{1, 4} {
		k, err := Compile(src, Options{
			Target:   Ambit,
			Geometry: shardGeom(channels),
			Budget:   Budget{MaxDRAMCommands: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := k.RunTiledCtx(nil, in, lanes)
		if res != nil {
			t.Fatalf("channels=%d: budget stop returned a result", channels)
		}
		var be *BudgetError
		if !errors.As(err, &be) || be.Dimension != DimDRAMCommands || be.Limit != 10 || be.Count != 11 {
			t.Fatalf("channels=%d: want dram-commands BudgetError{10,11}, got %v", channels, err)
		}
		stops = append(stops, err)
	}
	if !reflect.DeepEqual(stops[0], stops[1]) {
		t.Fatalf("budget stop differs across channel counts: %v vs %v", stops[0], stops[1])
	}
}

// TestRunTiledCancelSharded: a canceled context stops the sharded replay
// with the sentinel identity and no result.
func TestRunTiledCancelSharded(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel"
	k, err := Compile(src, Options{Target: Ambit, Geometry: shardGeom(4)})
	if err != nil {
		t.Fatal(err)
	}
	lanes := 8 * tinyGeom().Bitlines()
	in := map[string][][]uint64{"a": make([][]uint64, lanes), "b": make([][]uint64, lanes)}
	for l := 0; l < lanes; l++ {
		in["a"][l] = []uint64{uint64(l) & 0xFF}
		in["b"][l] = []uint64{uint64(l+2) & 0xFF}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := k.RunTiledCtx(ctx, in, lanes)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not match ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("canceled tiled run returned a result: %+v", res)
	}
}
