package chopper

import (
	"testing"

	"chopper/internal/dram"
)

// tinyGeom shrinks the subarray SIMD width so tiled tests stay fast: 64
// lanes per tile (8-byte rows), 4 banks.
func tinyGeom() dram.Geometry {
	return dram.Geometry{Banks: 4, SubarraysPB: 4, RowsPerSub: 256, RowBytes: 8, ReservedRows: 18}
}

func TestRunTiledMatchesRunWide(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8, c: u1) let z = a + b; c = a < b; tel"
	k, err := Compile(src, Options{Target: Ambit, Geometry: tinyGeom()})
	if err != nil {
		t.Fatal(err)
	}
	lanes := 300 // 5 tiles of 64 lanes, last one partial
	aw := make([][]uint64, lanes)
	bw := make([][]uint64, lanes)
	for l := 0; l < lanes; l++ {
		aw[l] = []uint64{uint64(l*7) & 0xFF}
		bw[l] = []uint64{uint64(l*13+5) & 0xFF}
	}
	res, err := k.RunTiled(map[string][][]uint64{"a": aw, "b": bw}, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != 5 {
		t.Errorf("tiles = %d, want 5", res.Tiles)
	}
	if res.TimeNs <= 0 {
		t.Error("no time accounted")
	}
	for l := 0; l < lanes; l++ {
		wantZ := (aw[l][0] + bw[l][0]) & 0xFF
		var wantC uint64
		if aw[l][0] < bw[l][0] {
			wantC = 1
		}
		if res.Outputs["z"][l][0] != wantZ || res.Outputs["c"][l][0] != wantC {
			t.Fatalf("lane %d: z=%d/%d c=%d/%d", l, res.Outputs["z"][l][0], wantZ, res.Outputs["c"][l][0], wantC)
		}
	}
}

func TestRunTiledFasterThanImpliedSerial(t *testing.T) {
	// 4 tiles across 4 banks must finish in well under 4x one tile's time.
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a * b; tel"
	k, err := Compile(src, Options{Target: Ambit, Geometry: tinyGeom()})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(lanes int) float64 {
		aw := make([][]uint64, lanes)
		bw := make([][]uint64, lanes)
		for l := range aw {
			aw[l] = []uint64{uint64(l) & 0xFF}
			bw[l] = []uint64{uint64(l+3) & 0xFF}
		}
		res, err := k.RunTiled(map[string][][]uint64{"a": aw, "b": bw}, lanes)
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeNs
	}
	one := mk(64)
	four := mk(256)
	if four > 2.2*one {
		t.Errorf("4 tiles on 4 banks took %.0f ns vs %.0f ns for one: no overlap", four, one)
	}
}

func TestRunTiledRejectsOversizedData(t *testing.T) {
	k, err := Compile("node main(a: u8) returns (z: u8) let z = a + 1; tel",
		Options{Target: Ambit, Geometry: tinyGeom()})
	if err != nil {
		t.Fatal(err)
	}
	huge := tinyGeom().Banks*tinyGeom().SubarraysPB*tinyGeom().Bitlines() + 1
	if _, err := k.RunTiled(map[string][][]uint64{"a": make([][]uint64, huge)}, huge); err == nil {
		t.Error("oversized dataset accepted")
	}
	if _, err := k.RunTiled(map[string][][]uint64{"a": {{1}}}, 5); err == nil {
		t.Error("short input accepted")
	}
}
