// Command benchcheck validates a perfbench report file (BENCH_chopper.json)
// against the chopper-bench/v1 schema and prints a one-line summary. CI
// runs it over the report emitted by `choppersim -bench` so a schema drift
// or a truncated write fails the job; exit status 1 means invalid.
//
// With -min-compile-speedup S (S > 0) it additionally gates on the
// compile-throughput section: at least -min-compile-workloads workloads
// must reach an Sx cold-compile speedup over the recorded baseline in at
// least one measured (arch, opt) configuration.
//
// With -min-tiled-speedup S (S > 0) it gates on the tiled section: at
// least -min-tiled-workloads workloads must reach an Sx end-to-end
// speedup at Channels>=2 over their own Channels=1 serial replay. Those
// figures come from the deterministic timing model, so the gate is exact
// even on noisy CI machines.
//
// With -min-narrow-uop-reduction R (R > 0) it gates on the narrow
// section: at least -min-narrow-workloads workloads must have some
// measured architecture where safe-mode narrowing both cuts the emitted
// micro-ops by the fraction R and speeds the simulated makespan up by
// -min-narrow-speedup. Like the tiled figures these come from the
// deterministic timing model, so the gate is exact on noisy machines.
//
// With -min-serve-qps Q (Q > 0) it gates on the chopperd serve section
// (written by cmd/chopperload -bench): the steady phase must complete at
// least Q requests per second successfully, and no phase — including the
// forced-overload phase — may record any 5xx server error: overload must
// shed with 429, never fail with 500.
//
// Usage:
//
//	benchcheck [flags] [report.json]     # default BENCH_chopper.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"chopper/internal/perfbench"
)

func main() {
	minCompile := flag.Float64("min-compile-speedup", 0,
		"fail unless this compile speedup is met on enough workloads (0 disables)")
	minWorkloads := flag.Int("min-compile-workloads", 2,
		"how many workloads must meet -min-compile-speedup")
	minTiled := flag.Float64("min-tiled-speedup", 0,
		"fail unless this end-to-end channel-sharding speedup is met on enough workloads (0 disables)")
	minTiledWorkloads := flag.Int("min-tiled-workloads", 2,
		"how many workloads must meet -min-tiled-speedup")
	minNarrowUop := flag.Float64("min-narrow-uop-reduction", 0,
		"fail unless safe-mode narrowing cuts emitted micro-ops by this fraction on enough workloads (0 disables)")
	minNarrowSpeedup := flag.Float64("min-narrow-speedup", 1.2,
		"with -min-narrow-uop-reduction: the simulated makespan speedup the same entries must also reach")
	minNarrowWorkloads := flag.Int("min-narrow-workloads", 2,
		"how many workloads must meet the narrowing thresholds")
	minServeQPS := flag.Float64("min-serve-qps", 0,
		"fail unless the serve section's steady phase completes this many requests/s OK, with zero 5xx in any phase (0 disables)")
	minBatchSpeedup := flag.Float64("min-batch-speedup", 0,
		"fail unless the serve_batch section's batched phase reaches this ok-qps multiple of the solo phase OR cuts its p99 by the same factor, with zero 5xx in both (0 disables)")
	minBatchOccupancy := flag.Float64("min-batch-occupancy", 0,
		"fail unless the serve_batch section's achieved mean batch size reaches this (0 disables)")
	flag.Parse()
	path := "BENCH_chopper.json"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [flags] [report.json]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		path = flag.Arg(0)
	}
	rep, err := perfbench.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	best, bestAt := 0.0, ""
	for _, r := range rep.Current {
		if s := rep.Speedup(r.Workload, r.Arch); s > best {
			best, bestAt = s, r.Workload+"/"+r.Arch
		}
	}
	fmt.Printf("%s: valid %s report, %d current / %d baseline entries", path, rep.Schema, len(rep.Current), len(rep.Baseline))
	if best > 0 {
		fmt.Printf(", best speedup %.2fx (%s)", best, bestAt)
	}
	fmt.Println()

	if rep.Compile != nil {
		perWorkload := rep.CompileWorkloadBest()
		names := make([]string, 0, len(perWorkload))
		for wl := range perWorkload {
			names = append(names, wl)
		}
		sort.Strings(names)
		fmt.Printf("compile: %d entries", len(rep.Compile.Current))
		for _, wl := range names {
			fmt.Printf(", %s %.2fx", wl, perWorkload[wl])
		}
		fmt.Println()
	}

	if rep.Tiled != nil {
		perWorkload := rep.TiledSpeedups()
		names := make([]string, 0, len(perWorkload))
		for wl := range perWorkload {
			names = append(names, wl)
		}
		sort.Strings(names)
		fmt.Printf("tiled: %d entries", len(rep.Tiled.Entries))
		for _, wl := range names {
			fmt.Printf(", %s %.2fx", wl, perWorkload[wl])
		}
		fmt.Println()
	}

	if rep.Narrow != nil {
		gains := rep.NarrowGains()
		names := make([]string, 0, len(gains))
		for wl := range gains {
			names = append(names, wl)
		}
		sort.Strings(names)
		fmt.Printf("narrow: %d entries", len(rep.Narrow.Entries))
		for _, wl := range names {
			e := gains[wl]
			fmt.Printf(", %s -%.1f%% uops %.2fx (%s)", wl, 100*e.UopReduction, e.MakespanSpeedup, e.Arch)
		}
		fmt.Println()
	}

	if rep.Serve != nil {
		fmt.Printf("serve: %d phases", len(rep.Serve.Entries))
		for _, e := range rep.Serve.Entries {
			fmt.Printf(", %s %.1f ok-qps (shed %.1f%%, 5xx %d)", e.Phase, e.OKQPS, 100*e.ShedRate, e.ServerErrors)
		}
		fmt.Println()
	}

	if *minCompile > 0 {
		if rep.Compile == nil {
			fmt.Fprintf(os.Stderr, "benchcheck: -min-compile-speedup %.2g set but %s has no compile section\n", *minCompile, path)
			os.Exit(1)
		}
		met := 0
		for _, s := range rep.CompileWorkloadBest() {
			if s >= *minCompile {
				met++
			}
		}
		if met < *minWorkloads {
			fmt.Fprintf(os.Stderr, "benchcheck: only %d workloads reach a %.2gx compile speedup, need %d\n",
				met, *minCompile, *minWorkloads)
			os.Exit(1)
		}
		fmt.Printf("compile gate: %d workloads at >=%.2gx (need %d) — ok\n", met, *minCompile, *minWorkloads)
	}

	if *minTiled > 0 {
		if rep.Tiled == nil {
			fmt.Fprintf(os.Stderr, "benchcheck: -min-tiled-speedup %.2g set but %s has no tiled section\n", *minTiled, path)
			os.Exit(1)
		}
		met := 0
		for _, s := range rep.TiledSpeedups() {
			if s >= *minTiled {
				met++
			}
		}
		if met < *minTiledWorkloads {
			fmt.Fprintf(os.Stderr, "benchcheck: only %d workloads reach a %.2gx tiled end-to-end speedup, need %d\n",
				met, *minTiled, *minTiledWorkloads)
			os.Exit(1)
		}
		fmt.Printf("tiled gate: %d workloads at >=%.2gx (need %d) — ok\n", met, *minTiled, *minTiledWorkloads)
	}

	if *minNarrowUop > 0 {
		if rep.Narrow == nil {
			fmt.Fprintf(os.Stderr, "benchcheck: -min-narrow-uop-reduction %.2g set but %s has no narrow section\n", *minNarrowUop, path)
			os.Exit(1)
		}
		// A workload qualifies when any measured architecture clears both
		// bars at once — how much slack narrowing converts into savings
		// depends on each architecture's instruction repertoire.
		qualified := map[string]bool{}
		for _, e := range rep.Narrow.Entries {
			if e.UopReduction >= *minNarrowUop && e.MakespanSpeedup >= *minNarrowSpeedup {
				qualified[e.Workload] = true
			}
		}
		if len(qualified) < *minNarrowWorkloads {
			fmt.Fprintf(os.Stderr, "benchcheck: only %d workloads reach a %.2g micro-op reduction with a %.2gx makespan speedup, need %d\n",
				len(qualified), *minNarrowUop, *minNarrowSpeedup, *minNarrowWorkloads)
			os.Exit(1)
		}
		fmt.Printf("narrow gate: %d workloads at >=-%.2g uops and >=%.2gx makespan (need %d) — ok\n",
			len(qualified), *minNarrowUop, *minNarrowSpeedup, *minNarrowWorkloads)
	}

	if sb := rep.ServeBatch; sb != nil {
		fmt.Printf("serve_batch: mean batch size %.2f, solo %.1f ok-qps p99 %.1fms, batched %.1f ok-qps p99 %.1fms\n",
			sb.MeanBatchSize, sb.Solo.OKQPS, sb.Solo.P99Ns/1e6, sb.Batched.OKQPS, sb.Batched.P99Ns/1e6)
	}

	if *minServeQPS > 0 {
		if rep.Serve == nil {
			fmt.Fprintf(os.Stderr, "benchcheck: -min-serve-qps %.2g set but %s has no serve section\n", *minServeQPS, path)
			os.Exit(1)
		}
		if got := rep.ServeOKQPS("steady"); got < *minServeQPS {
			fmt.Fprintf(os.Stderr, "benchcheck: steady-phase ok throughput %.1f qps below the %.2g qps floor\n", got, *minServeQPS)
			os.Exit(1)
		}
		if n := rep.ServeServerErrors(); n != 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: serve section records %d server errors, want 0\n", n)
			os.Exit(1)
		}
		fmt.Printf("serve gate: steady %.1f ok-qps (need %.2g), zero 5xx — ok\n", rep.ServeOKQPS("steady"), *minServeQPS)
	}

	if *minBatchSpeedup > 0 || *minBatchOccupancy > 0 {
		sb := rep.ServeBatch
		if sb == nil {
			fmt.Fprintf(os.Stderr, "benchcheck: batch gate set but %s has no serve_batch section\n", path)
			os.Exit(1)
		}
		if sb.Solo.ServerErrors != 0 || sb.Batched.ServerErrors != 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: serve_batch records server errors (solo %d, batched %d), want 0\n",
				sb.Solo.ServerErrors, sb.Batched.ServerErrors)
			os.Exit(1)
		}
		if *minBatchOccupancy > 0 {
			if sb.MeanBatchSize < *minBatchOccupancy {
				fmt.Fprintf(os.Stderr, "benchcheck: mean batch size %.2f below the %.2g floor\n",
					sb.MeanBatchSize, *minBatchOccupancy)
				os.Exit(1)
			}
			fmt.Printf("batch occupancy gate: %.2f members/pass (need %.2g) — ok\n", sb.MeanBatchSize, *minBatchOccupancy)
		}
		if *minBatchSpeedup > 0 {
			qpsGain := 0.0
			if sb.Solo.OKQPS > 0 {
				qpsGain = sb.Batched.OKQPS / sb.Solo.OKQPS
			}
			p99Cut := 0.0
			if sb.Batched.P99Ns > 0 {
				p99Cut = sb.Solo.P99Ns / sb.Batched.P99Ns
			}
			if qpsGain < *minBatchSpeedup && p99Cut < *minBatchSpeedup {
				fmt.Fprintf(os.Stderr, "benchcheck: batched phase reaches %.2fx ok-qps and %.2fx p99 cut vs solo, need %.2gx on either\n",
					qpsGain, p99Cut, *minBatchSpeedup)
				os.Exit(1)
			}
			fmt.Printf("batch speedup gate: %.2fx ok-qps, %.2fx p99 cut (need %.2gx on either) — ok\n",
				qpsGain, p99Cut, *minBatchSpeedup)
		}
	}
}
