// Command benchcheck validates a perfbench report file (BENCH_chopper.json)
// against the chopper-bench/v1 schema and prints a one-line summary. CI
// runs it over the report emitted by `choppersim -bench` so a schema drift
// or a truncated write fails the job; exit status 1 means invalid.
//
// Usage:
//
//	benchcheck [report.json]     # default BENCH_chopper.json
package main

import (
	"flag"
	"fmt"
	"os"

	"chopper/internal/perfbench"
)

func main() {
	flag.Parse()
	path := "BENCH_chopper.json"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [report.json]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		path = flag.Arg(0)
	}
	rep, err := perfbench.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	best, bestAt := 0.0, ""
	for _, r := range rep.Current {
		if s := rep.Speedup(r.Workload, r.Arch); s > best {
			best, bestAt = s, r.Workload+"/"+r.Arch
		}
	}
	fmt.Printf("%s: valid %s report, %d current / %d baseline entries", path, rep.Schema, len(rep.Current), len(rep.Baseline))
	if best > 0 {
		fmt.Printf(", best speedup %.2fx (%s)", best, bestAt)
	}
	fmt.Println()
}
