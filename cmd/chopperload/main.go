// chopperload is a deterministic seeded open-loop load generator for
// chopperd. It drives a fixed request schedule (class mix, tenant
// spread, workload mix and operands all derived from -seed), optionally
// follows the steady phase with a forced-overload burst, and reports
// per-phase p50/p99/p999 latency, shed rate and cache hit rate.
//
//	chopperload -addr http://127.0.0.1:8479 -qps 100 -duration 5s \
//	    -overload-qps 400 -overload-duration 2s
//
// With -bench PATH the steady/overload results are written into the
// tracked benchmark report's serve section (see internal/perfbench),
// which cmd/benchcheck gates with -min-serve-qps.
//
// Exit status: 0 on success, 1 on usage or transport-level failure,
// 2 when -fail-on-5xx is set and the server returned any 5xx other than
// the 503 drain rejection — the CI overload assertion that sheds are
// deterministic 429s, never internal errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"chopper/internal/perfbench"
	"chopper/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8479", "chopperd base URL")
	seed := flag.Int64("seed", 1, "request-schedule seed")
	qps := flag.Float64("qps", 100, "steady-phase offered load")
	duration := flag.Duration("duration", 5*time.Second, "steady-phase length")
	overQPS := flag.Float64("overload-qps", 0, "overload-phase offered load (0 disables the phase)")
	overDur := flag.Duration("overload-duration", 0, "overload-phase length")
	homogQPS := flag.Float64("homogeneous-qps", 0,
		"same-key phase offered load, run once with batching opted out and once allowed (0 disables; point at a chopperd with -batch-window)")
	homogDur := flag.Duration("homogeneous-duration", 0, "same-key phase length (each of the two passes)")
	lanes := flag.Int("lanes", 8, "SIMD lanes for run requests")
	tenants := flag.Int("tenants", 4, "tenant spread")
	failOn5xx := flag.Bool("fail-on-5xx", false, "exit 2 if any phase saw a 5xx other than 503-draining")
	jsonOut := flag.Bool("json", false, "print the full report as JSON")
	benchPath := flag.String("bench", "", "update this benchmark report's serve section")
	benchNote := flag.String("bench-note", "", "note recorded with the serve section")
	flag.Parse()

	// Default Transport keeps only 2 idle conns per host; an open-loop
	// burst through it degenerates into dial churn that throttles the
	// offered load before it reaches the server. Pool enough conns for
	// the generator's full outstanding window.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 512
	transport.MaxIdleConnsPerHost = 512
	target := serve.HTTPTarget{BaseURL: *addr, Client: &http.Client{
		Timeout:   60 * time.Second,
		Transport: transport,
	}}
	report, err := serve.RunLoad(context.Background(), target, serve.LoadConfig{
		Seed:                *seed,
		QPS:                 *qps,
		Duration:            *duration,
		OverloadQPS:         *overQPS,
		OverloadDuration:    *overDur,
		HomogeneousQPS:      *homogQPS,
		HomogeneousDuration: *homogDur,
		Lanes:               *lanes,
		Tenants:             *tenants,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chopperload: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(report)
	} else {
		for _, p := range report.Phases {
			fmt.Printf("%-8s offered %.0f qps  achieved %.1f qps (ok %.1f)  requests %d  ok %d  shed %d (%.1f%%)  5xx %d  transport %d\n",
				p.Name, p.OfferedQPS, p.AchievedQPS, p.OKQPS, p.Requests, p.OK, p.Shed, 100*p.ShedRate, p.ServerErrors, p.TransportErrors)
			fmt.Printf("         p50 %s  p99 %s  p999 %s  interactive-p99 %s  cache-hit %.1f%%  degraded %d\n",
				time.Duration(p.P50Ns), time.Duration(p.P99Ns), time.Duration(p.P999Ns),
				time.Duration(p.InteractiveP99Ns), 100*p.CacheHitRate, p.Degraded)
			if p.MeanBatchSize > 0 {
				fmt.Printf("         mean batch size %.2f\n", p.MeanBatchSize)
			}
		}
	}

	if *benchPath != "" {
		if err := updateBench(*benchPath, *benchNote, report); err != nil {
			fmt.Fprintf(os.Stderr, "chopperload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serve section updated in %s\n", *benchPath)
	}

	if *failOn5xx {
		for _, p := range report.Phases {
			if p.ServerErrors > 0 {
				fmt.Fprintf(os.Stderr, "chopperload: phase %s saw %d server errors (want 0: overload must shed with 429, not fail with 5xx)\n",
					p.Name, p.ServerErrors)
				os.Exit(2)
			}
			if p.TransportErrors > 0 {
				fmt.Fprintf(os.Stderr, "chopperload: phase %s saw %d transport errors\n", p.Name, p.TransportErrors)
				os.Exit(2)
			}
		}
	}
}

// updateBench refreshes the serve section of the tracked benchmark
// report, preserving every other section (the same refresh pattern the
// compile and tiled sections use). The homogeneous solo/batched pair,
// when present, lands in the serve_batch section instead, which
// cmd/benchcheck gates with -min-batch-speedup / -min-batch-occupancy.
func updateBench(path, note string, report *serve.LoadReport) error {
	r, err := perfbench.Load(path)
	if err != nil {
		return err
	}
	toEntry := func(p serve.LoadPhase) perfbench.ServeEntry {
		return perfbench.ServeEntry{
			Phase:            p.Name,
			OfferedQPS:       p.OfferedQPS,
			AchievedQPS:      p.AchievedQPS,
			OKQPS:            p.OKQPS,
			Requests:         p.Requests,
			OK:               p.OK,
			Shed:             p.Shed,
			ServerErrors:     p.ServerErrors,
			ShedRate:         p.ShedRate,
			CacheHitRate:     p.CacheHitRate,
			P50Ns:            p.P50Ns,
			P99Ns:            p.P99Ns,
			P999Ns:           p.P999Ns,
			InteractiveP99Ns: p.InteractiveP99Ns,
		}
	}
	var entries []perfbench.ServeEntry
	var solo, batched *perfbench.ServeEntry
	var meanBatch float64
	for _, p := range report.Phases {
		e := toEntry(p)
		switch p.Name {
		case "homog-solo":
			solo = &e
		case "homog-batched":
			batched = &e
			meanBatch = p.MeanBatchSize
		default:
			entries = append(entries, e)
		}
	}
	if len(entries) > 0 {
		r.SetServe(entries, note)
	}
	if solo != nil && batched != nil {
		r.SetServeBatch(&perfbench.ServeBatchSection{
			Note:          note,
			MeanBatchSize: meanBatch,
			Solo:          *solo,
			Batched:       *batched,
		})
	}
	return r.WriteFile(path)
}
