package main

import (
	"os"
	"path/filepath"
	"testing"

	"chopper/internal/isa"
	"chopper/internal/obs"
)

func TestParseArch(t *testing.T) {
	cases := map[string]isa.Arch{"ambit": isa.Ambit, "ELP2IM": isa.ELP2IM, "SimDram": isa.SIMDRAM}
	for s, want := range cases {
		got, err := parseArch(s)
		if err != nil || got != want {
			t.Errorf("parseArch(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseArch("pentium"); err == nil {
		t.Error("bogus arch accepted")
	}
}

func TestParseOpt(t *testing.T) {
	for _, v := range obs.AllVariants {
		got, err := parseOpt(v.String())
		if err != nil || got != v {
			t.Errorf("parseOpt(%q) = %v, %v", v, got, err)
		}
	}
	if _, err := parseOpt("turbo"); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestReadSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.chop")
	if err := os.WriteFile(path, []byte("node main..."), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSource(path)
	if err != nil || got != "node main..." {
		t.Errorf("readSource: %q, %v", got, err)
	}
	if _, err := readSource(filepath.Join(dir, "missing.chop")); err == nil {
		t.Error("missing file accepted")
	}
}
