// Command chopperc compiles CHOPPER source into PUD micro-op assembly.
//
// Usage:
//
//	chopperc [-target ambit|elp2im|simdram] [-opt bitslice|schedule|reuse|rename]
//	         [-baseline] [-horizontal] [-dump ast|dfg|net|asm|stats|live]
//	         [-entry node] file.chop
//
// With no -dump flag it prints the assembly. "-" reads from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	chopper "chopper"
	"chopper/internal/dsl"
	"chopper/internal/isa"
	"chopper/internal/obs"
)

func main() {
	target := flag.String("target", "ambit", "PUD architecture: ambit, elp2im, simdram")
	opt := flag.String("opt", "rename", "optimization level: bitslice, schedule, reuse, rename")
	baselineFlag := flag.Bool("baseline", false, "compile with the hands-tuned SIMDRAM methodology instead of CHOPPER")
	horizontal := flag.Bool("horizontal", false, "compile for the horizontal (bit-parallel) layout; bitwise kernels only")
	dump := flag.String("dump", "asm", "what to print: ast, dfg, net, asm, stats, live")
	entry := flag.String("entry", "", "entry node (default: main or last node)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chopperc [flags] file.chop (or - for stdin)")
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	arch, err := parseArch(*target)
	if err != nil {
		fatal(err)
	}
	lv, err := parseOpt(*opt)
	if err != nil {
		fatal(err)
	}

	opts := chopper.Options{Target: arch, Entry: *entry}.WithOpt(lv)
	var k *chopper.Kernel
	switch {
	case *baselineFlag && *horizontal:
		fatal(fmt.Errorf("-baseline and -horizontal are mutually exclusive"))
	case *baselineFlag:
		k, err = chopper.CompileBaseline(src, opts)
	case *horizontal:
		k, err = chopper.CompileHorizontal(src, opts)
	default:
		k, err = chopper.Compile(src, opts)
	}
	if err != nil {
		fatal(err)
	}

	switch *dump {
	case "asm":
		fmt.Print(k.Asm())
	case "ast":
		// The expanded program, pretty-printed as canonical source.
		fmt.Print(dsl.Format(k.Program))
	case "dfg":
		fmt.Printf("dataflow graph: %d values, %d operations, %d inputs, %d outputs\n",
			k.Graph.NumValues(), k.Graph.OpCount(), len(k.Graph.Inputs), len(k.Graph.Outputs))
	case "net":
		if k.Net == nil {
			fatal(fmt.Errorf("baseline kernels lower per operation; no whole-program net"))
		}
		fmt.Printf("%v\n", k.Net)
		for kind, n := range k.Net.Counts() {
			fmt.Printf("  %-8s %d\n", kind, n)
		}
	case "live":
		if k.Net == nil {
			fatal(fmt.Errorf("baseline kernels lower per operation; no whole-program schedule"))
		}
		natural := obs.ScheduleGates(k.Net, false)
		scheduled := obs.ScheduleGates(k.Net, true)
		fmt.Printf("computation gates:        %d\n", len(scheduled))
		fmt.Printf("buffering pressure (natural order):   %d rows\n", obs.MaxLive(k.Net, natural))
		fmt.Printf("buffering pressure (OBS-1 scheduled): %d rows\n", obs.MaxLive(k.Net, scheduled))
		if k.Code != nil {
			fmt.Printf("D-group high-water mark (generated):  %d rows\n", k.Code.Stats.MaxLiveRows)
			fmt.Printf("stores elided (OBS-3):                %d\n", k.Code.Stats.StoresElided)
		}
	case "stats":
		p := k.Prog()
		fmt.Printf("target:        %v\n", arch)
		fmt.Printf("instructions:  %d\n", len(p.Ops))
		for kind, n := range p.Counts() {
			fmt.Printf("  %-10s %d\n", kind, n)
		}
		fmt.Printf("D rows used:   %d\n", p.DRowsUsed)
		fmt.Printf("spill slots:   %d\n", p.SpillSlots)
		if k.Code != nil {
			s := k.Stats()
			fmt.Printf("stores elided: %d\ndirect writes: %d\nconst reuses:  %d\n",
				s.StoresElided, s.DirectWrites, s.ConstCopies)
		}
		if k.Baseline != nil {
			b := k.Baseline.Stats
			fmt.Printf("operand rows:  %d\nspilled values: %d (%d rows)\n",
				b.OperandRows, b.SpilledValues, b.SpilledRows)
		}
	default:
		fatal(fmt.Errorf("unknown -dump %q", *dump))
	}
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseArch(s string) (isa.Arch, error) {
	switch strings.ToLower(s) {
	case "ambit":
		return isa.Ambit, nil
	case "elp2im":
		return isa.ELP2IM, nil
	case "simdram":
		return isa.SIMDRAM, nil
	}
	return 0, fmt.Errorf("unknown target %q", s)
}

func parseOpt(s string) (obs.Variant, error) {
	for _, v := range obs.AllVariants {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown optimization level %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chopperc:", err)
	os.Exit(1)
}
