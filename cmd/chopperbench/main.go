// Command chopperbench regenerates the paper's evaluation tables and
// figures (Section VIII) on the simulated infrastructure.
//
// Usage:
//
//	chopperbench [-exp all|table1|table2|table3|fig9|fig10|fig11|fig12] [-quick]
//
// -quick restricts the run to one small configuration per domain (useful
// for smoke tests); the full set is all 16 Table II workloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chopper/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, table3, fig9, fig9summary, fig10, fig11, fig12, emission, energy, ssd")
	quick := flag.Bool("quick", false, "run only one small configuration per domain")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()

	sel := bench.AllWorkloads()
	if *quick {
		sel = bench.QuickWorkloads()
	}
	h := bench.NewHarness()

	run := func(name string, f func() (*bench.Table, error)) {
		t0 := time.Now()
		t, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chopperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t.Render())
			fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		fmt.Println(bench.Table1())
	}
	if want("table2") {
		fmt.Println(bench.Table2())
	}
	if want("fig9") {
		run("fig9", func() (*bench.Table, error) { return h.Fig9(sel) })
	}
	if want("fig9summary") || want("fig9") {
		run("fig9summary", func() (*bench.Table, error) { return h.Fig9Speedups(sel) })
	}
	if want("table3") {
		run("table3", func() (*bench.Table, error) { return h.Table3() })
	}
	if want("fig10") {
		run("fig10", func() (*bench.Table, error) { return h.Fig10(sel) })
	}
	if want("fig11") {
		run("fig11", func() (*bench.Table, error) { return h.Fig11(sel) })
	}
	if want("fig12") {
		run("fig12", func() (*bench.Table, error) { return h.Fig12(sel) })
	}
	if want("emission") {
		run("emission", func() (*bench.Table, error) { return h.EmissionStudy(sel) })
	}
	if want("energy") {
		run("energy", func() (*bench.Table, error) { return h.EnergyStudy(sel) })
	}
	if want("ssd") {
		run("ssd", func() (*bench.Table, error) { return h.SSDStudy() })
	}
}
