// chopperd serves the CHOPPER compiler and simulator as a
// production-hardened multi-tenant HTTP service.
//
//	chopperd [-addr :8479] [flags]
//
// Endpoints (see docs/SERVICE.md for the full reference):
//
//	POST /v1/compile   compile a program, report kernel + cache facts
//	POST /v1/run       compile (cached) and execute on simulated PUD
//	POST /v1/verify    compile (cached) and verify against reference
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 once draining)
//	GET  /metrics      Prometheus-style text metrics
//
// Requests carry a QoS class (interactive / batch / best-effort); each
// class has its own admission queue, deadline and resource budget, and
// overload sheds deterministically with 429 + Retry-After. Tenants are
// isolated: per-tenant kernel-cache shards and per-tenant circuit
// breakers that degrade a failing tenant down the optimization ladder
// instead of failing it outright.
//
// On SIGTERM/SIGINT the server drains gracefully: /readyz flips first
// (so load balancers route away during -pre-drain), then admission
// stops (503), in-flight requests finish, and anything still running at
// -drain-timeout is hard-canceled through the guard layer.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chopper/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8479", "listen address")
	preDrain := flag.Duration("pre-drain", 0,
		"delay between flipping /readyz and refusing new work (lets load balancers route away)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long a drain waits for in-flight requests before hard-canceling them")
	cacheEntries := flag.Int("cache-entries", 0, "per-tenant kernel-cache entries (0 = default)")
	maxTenants := flag.Int("max-tenants", 0, "tenant-shard bound; extra tenants share an overflow shard (0 = default)")
	tripAfter := flag.Int("breaker-trip-after", 0, "consecutive bad outcomes before a tenant degrades one level (0 = default)")
	recoverAfter := flag.Int("breaker-recover-after", 0, "consecutive good outcomes before a degraded tenant recovers one level (0 = default)")
	maxInflight := flag.Int("max-inflight", 0, "override every class's in-flight bound (0 = per-class defaults; CI uses this to force overload)")
	maxQueue := flag.Int("max-queue", -1, "override every class's queue bound (-1 = per-class defaults)")
	batchWindow := flag.Duration("batch-window", 0,
		"coalesce same-key run/verify requests for up to this long into one device pass (0 disables batching)")
	maxBatch := flag.Int("max-batch", 0, "members per coalesced pass; a full batch executes early (0 = default 8, cap 64)")
	flag.Parse()

	cfg := serve.Config{
		CacheEntries:        *cacheEntries,
		MaxTenants:          *maxTenants,
		BreakerTripAfter:    *tripAfter,
		BreakerRecoverAfter: *recoverAfter,
	}
	if *maxInflight > 0 || *maxQueue >= 0 || *batchWindow > 0 {
		for c := serve.Interactive; c <= serve.BestEffort; c++ {
			cc := serve.DefaultClassConfig(c)
			if *maxInflight > 0 {
				cc.MaxInflight = *maxInflight
			}
			if *maxQueue >= 0 {
				cc.MaxQueue = *maxQueue
			}
			if *batchWindow > 0 {
				cc.BatchWindow = *batchWindow
				cc.MaxBatchSize = *maxBatch
			}
			cfg.Classes[c] = cc
		}
	}
	srv := serve.New(cfg)
	for c := serve.Interactive; c <= serve.BestEffort; c++ {
		eff := srv.ClassConfig(c)
		log.Printf("chopperd: class %s: inflight %d queue %d deadline %s batch-window %s max-batch %d",
			c, eff.MaxInflight, eff.MaxQueue, eff.Deadline, eff.BatchWindow, eff.MaxBatchSize)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("chopperd: %v", err)
	}
	log.Printf("chopperd: listening on %s", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		log.Fatalf("chopperd: serve: %v", err)
	case sig := <-sigCh:
		log.Printf("chopperd: %v: draining (pre-drain %s, timeout %s)", sig, *preDrain, *drainTimeout)
	}

	// Drain sequence: readyz first, then stop admitting, then wait.
	srv.SetNotReady()
	if *preDrain > 0 {
		time.Sleep(*preDrain)
	}
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		log.Printf("chopperd: listener shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("chopperd: hard drain: %v", drainErr)
		os.Exit(1)
	}
	log.Printf("chopperd: drained cleanly")
}
