// Command choppersim compiles a CHOPPER program and executes it on the
// functional DRAM simulator, printing per-lane results and timing.
//
// Usage:
//
//	choppersim [-target ...] [-opt ...] [-baseline] [-lanes N]
//	           [-harden] [-fault-rate P] [-fault-seed S]
//	           [-recover none|parity|vote] [-epoch-uops N] [-max-retries N]
//	           [-narrow off|safe|annotated]
//	           [-timeout D] [-max-uops N]
//	           [-in name=v1,v2,... ...] file.chop
//	choppersim -asm file.pud       # execute raw PUD assembly
//	choppersim -bench              # run the tracked benchmark suite
//	choppersim -compile-bench      # run the compile-throughput suite
//	choppersim -tiled-bench        # run the channel-sharded tiled suite
//	choppersim -narrow-bench       # run the precision-adaptive suite
//
// -bench runs the internal/perfbench suite (paper workloads x all
// architectures) and writes BENCH_chopper.json (override with -bench-out),
// preserving the recorded baseline section of an existing file so the
// before/after comparison survives refreshes. -bench-quick runs a single
// timed iteration per pair — the CI smoke configuration.
//
// -compile-bench refreshes the report's `compile` section (cold-compile
// ns/op, allocs, gates/s across workloads x architectures x opt levels);
// combined with -bench both suites run in one invocation. Alone, it
// rewrites only the compile section of an existing report, leaving the
// simulator sections untouched.
//
// -tiled-bench refreshes the report's `tiled` section: every suite
// workload runs RunTiled on the bank-oversubscribed tiled geometry at
// Channels=1 and Channels=4, recording the simulated device makespan,
// host-transfer time and end-to-end time per configuration (the
// channel-sharding speedup CI gates on). Like -compile-bench it composes
// with -bench or refreshes just its own section of an existing report.
//
// -narrow-bench refreshes the report's `narrow` section: every suite
// workload compiles with and without safe-mode narrowing on every
// architecture, the narrowed kernel is verified bit-exactly, and the
// emitted micro-op counts plus simulated makespans of both are recorded
// (the precision-adaptive gains CI gates on). Like the other section
// flags it composes with -bench or refreshes just its own section.
//
// -narrow selects the precision-adaptive compilation mode for single-
// program runs (see docs/PERFORMANCE.md): safe narrows values to bits
// the compiler can prove live, annotated additionally trusts @range
// input annotations. When narrowing engages, the summary gains a line
// with the declared-vs-live bit accounting and the micro-ops saved
// against a narrowing-off compile of the same program.
//
// -harden compiles with TMR (see docs/RELIABILITY.md); -fault-rate runs the
// program on a faulty subarray, injecting TRA charge-sharing flips at the
// given per-operation probability, reproducibly from -fault-seed.
//
// -recover enables self-healing execution with the named detector: the run
// is split into epochs, checkpointed, validated online, and replayed with
// scrub and backoff on a detection (see docs/RELIABILITY.md). -epoch-uops
// sets the epoch length target and -max-retries bounds replays per epoch;
// the run summary gains a recovery line (epochs, detections, corrections,
// wasted work). Recovery replays stay subject to -timeout and the budget
// caps: a retry loop that hits a limit exits with the same status-3
// diagnostics as plain runs.
//
// -timeout bounds the whole compile+run by wall clock and -max-uops caps
// how many micro-ops the compiler may emit (see docs/GUARDS.md). A budget
// or deadline stop exits with status 3 and a one-line diagnostic naming
// the exhausted dimension and its limit.
//
// Inputs not supplied default to a deterministic ramp (lane index modulo
// the operand's range), so quick experiments need no flags at all. In -asm
// mode WRITE tags are fed lane-index ramps XORed with the tag, and READ
// results are printed per tag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	chopper "chopper"
	"chopper/internal/dram"
	"chopper/internal/isa"
	"chopper/internal/obs"
	"chopper/internal/perfbench"
	"chopper/internal/sim"
	"chopper/internal/transpose"
)

type inputFlags map[string][]uint64

func (f inputFlags) String() string { return "" }

func (f inputFlags) Set(s string) error {
	name, vals, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=v1,v2,...")
	}
	for _, p := range strings.Split(vals, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 0, 64)
		if err != nil {
			return err
		}
		f[name] = append(f[name], v)
	}
	return nil
}

func main() {
	asmMode := flag.Bool("asm", false, "treat the input as raw PUD assembly and execute it directly")
	target := flag.String("target", "ambit", "PUD architecture: ambit, elp2im, simdram")
	opt := flag.String("opt", "rename", "optimization level")
	baselineFlag := flag.Bool("baseline", false, "use the hands-tuned methodology")
	lanes := flag.Int("lanes", 16, "SIMD lanes to simulate")
	show := flag.Int("show", 8, "lanes to print")
	harden := flag.Bool("harden", false, "compile with TMR hardening (triplicated logic, majority-voted outputs)")
	faultRate := flag.Float64("fault-rate", 0, "per-TRA charge-sharing fault probability; 0 disables injection")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed (same seed, same faults)")
	recoverMode := flag.String("recover", "none", "self-healing execution detector: none, parity, vote")
	narrowMode := flag.String("narrow", "off", "precision-adaptive compilation: off, safe, annotated")
	epochUops := flag.Int("epoch-uops", 0, "with -recover: target epoch length in micro-ops; 0 means the default (256)")
	maxRetries := flag.Int("max-retries", 0, "with -recover: replays allowed per epoch; 0 means the default (3), negative means detect-only")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for compile+run (e.g. 5s); 0 disables")
	maxUops := flag.Int("max-uops", 0, "cap on emitted micro-ops; 0 means unlimited")
	benchMode := flag.Bool("bench", false, "run the tracked benchmark suite and write a report instead of executing a program")
	benchOut := flag.String("bench-out", "BENCH_chopper.json", "report path for -bench")
	benchQuick := flag.Bool("bench-quick", false, "with -bench: one timed iteration per pair (CI smoke)")
	compileBench := flag.Bool("compile-bench", false, "run the compile-throughput suite and record it in the report's compile section")
	tiledBench := flag.Bool("tiled-bench", false, "run the channel-sharded tiled suite and record it in the report's tiled section")
	narrowBench := flag.Bool("narrow-bench", false, "run the precision-adaptive compilation suite and record it in the report's narrow section")
	ins := inputFlags{}
	flag.Var(ins, "in", "input operand values: name=v1,v2,... (repeatable)")
	flag.Parse()

	if *benchMode || *compileBench || *tiledBench || *narrowBench {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: choppersim [-bench] [-compile-bench] [-tiled-bench] [-narrow-bench] [-bench-out file] [-bench-quick]")
			os.Exit(2)
		}
		runBench(*benchOut, *benchQuick, *benchMode, *compileBench, *tiledBench, *narrowBench)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: choppersim [flags] file.chop")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	archs := map[string]isa.Arch{"ambit": isa.Ambit, "elp2im": isa.ELP2IM, "simdram": isa.SIMDRAM}
	arch, ok := archs[strings.ToLower(*target)]
	if !ok {
		fatal(fmt.Errorf("unknown -target %q (valid: ambit, elp2im, simdram)", *target))
	}
	if *lanes <= 0 {
		fatal(fmt.Errorf("-lanes must be positive, got %d", *lanes))
	}
	if *asmMode {
		runAsm(string(srcBytes), arch, *lanes)
		return
	}
	var lv obs.Variant
	found := false
	var valid []string
	for _, v := range obs.AllVariants {
		valid = append(valid, v.String())
		if v.String() == *opt {
			lv, found = v, true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown -opt %q (valid: %s)", *opt, strings.Join(valid, ", ")))
	}

	// Wire -timeout and -max-uops to the guard layer: the context bounds
	// the whole compile+run; the budget caps codegen emission.
	ctx := context.Context(nil)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		defer cancel()
	}
	if *maxUops < 0 {
		fatal(fmt.Errorf("-max-uops must be non-negative, got %d", *maxUops))
	}

	opts := chopper.Options{Target: arch, Harden: *harden}.WithOpt(lv)
	opts.Budget = chopper.Budget{MaxMicroOps: *maxUops}
	detectors := map[string]chopper.Detector{"none": chopper.DetectorNone, "parity": chopper.DetectorParity, "vote": chopper.DetectorVote}
	det, ok := detectors[strings.ToLower(*recoverMode)]
	if !ok {
		fatal(fmt.Errorf("unknown -recover %q (valid: none, parity, vote)", *recoverMode))
	}
	opts.Recovery = chopper.Recovery{Detector: det, EpochUops: *epochUops, MaxRetries: *maxRetries}
	narrows := map[string]chopper.NarrowMode{"off": chopper.NarrowOff, "safe": chopper.NarrowSafe, "annotated": chopper.NarrowAnnotated}
	nm, ok := narrows[strings.ToLower(*narrowMode)]
	if !ok {
		fatal(fmt.Errorf("unknown -narrow %q (valid: off, safe, annotated)", *narrowMode))
	}
	opts.Narrow = nm
	// Compile through the process-wide kernel cache so the summary reports
	// the serving-path counters a long-lived embedder would see (a one-shot
	// invocation records one miss).
	opts.Cache = chopper.SharedCache()
	var k *chopper.Kernel
	compileStart := time.Now()
	if *baselineFlag {
		k, err = chopper.CompileBaseline(string(srcBytes), opts)
	} else {
		k, err = chopper.CompileCtx(ctx, string(srcBytes), opts)
	}
	compileWall := time.Since(compileStart)
	if err != nil {
		fatalGuard(err)
	}

	// Assemble inputs: flags first, ramps for the rest.
	rows := make(map[string][][]uint64, len(k.Inputs))
	inVals := make(map[string][]uint64, len(k.Inputs))
	for _, in := range k.Inputs {
		vals := ins[in.Name]
		if vals == nil {
			vals = make([]uint64, *lanes)
			mask := ^uint64(0)
			if in.Width < 64 {
				mask = (uint64(1) << uint(in.Width)) - 1
			}
			for l := range vals {
				vals[l] = uint64(l) & mask
			}
		}
		if len(vals) < *lanes {
			padded := make([]uint64, *lanes)
			for l := range padded {
				padded[l] = vals[l%len(vals)]
			}
			vals = padded
		}
		inVals[in.Name] = vals
		w := in.Width
		if w > 64 {
			fatal(fmt.Errorf("input %s is %d bits; choppersim handles up to 64 (use the library's RunWide)", in.Name, w))
		}
		rows[in.Name] = transpose.ToVertical(vals, w, *lanes)
	}

	var res *chopper.RunResult
	wallStart := time.Now()
	if *faultRate > 0 {
		res, err = k.RunRowsUnderFaultCtx(ctx, rows, *lanes, chopper.FaultConfig{TRAFlipRate: *faultRate}, *faultSeed)
	} else {
		res, err = k.RunRowsCtx(ctx, rows, *lanes)
	}
	wall := time.Since(wallStart)
	if err != nil {
		fatalGuard(err)
	}

	if k.Degradation != nil {
		fmt.Fprintf(os.Stderr, "choppersim: warning: compiled degraded at %s (requested %s, %d pass failures)\n",
			k.Degradation.Effective, k.Degradation.Requested, len(k.Degradation.Events))
	}

	fmt.Printf("compiled for %v (%s): %d micro-ops, %d D rows, %d spill slots\n",
		arch, lv, len(k.Prog().Ops), k.Prog().DRowsUsed, k.Prog().SpillSlots)
	if cs := compileWall.Seconds(); cs > 0 {
		gates := 0
		if k.Net != nil {
			gates = len(k.Net.Gates)
		}
		stats := chopper.SharedCache().Stats()
		fmt.Printf("compile: %.2f ms wall, %.0f gates/s; kernel cache: %d hits / %d misses\n",
			cs*1e3, float64(gates)/cs, stats.Hits, stats.Misses)
	}
	if nm != chopper.NarrowOff {
		if k.Narrow == nil {
			fmt.Printf("narrowing (%s): pass fell back; program is the narrowing-off lowering\n", nm)
		} else {
			// A narrowing-off compile of the same program (served from the
			// kernel cache on repeats) anchors the micro-ops-saved figure.
			wide := opts
			wide.Narrow = chopper.NarrowOff
			var base *chopper.Kernel
			if *baselineFlag {
				base, err = chopper.CompileBaseline(string(srcBytes), wide)
			} else {
				base, err = chopper.CompileCtx(ctx, string(srcBytes), wide)
			}
			line := fmt.Sprintf("narrowing (%s): %d declared -> %d live bits across %d values",
				k.Narrow.Mode, k.Narrow.DeclaredBits, k.Narrow.LiveBits, k.Narrow.Values)
			if err == nil && len(base.Prog().Ops) > 0 {
				saved := len(base.Prog().Ops) - len(k.Prog().Ops)
				line += fmt.Sprintf(", %d micro-ops saved (%.1f%%)",
					saved, 100*float64(saved)/float64(len(base.Prog().Ops)))
			}
			fmt.Println(line)
		}
	}
	fmt.Printf("single-subarray makespan: %.1f us (%d lanes)\n", res.TimeNs/1000, *lanes)
	if s := wall.Seconds(); s > 0 {
		fmt.Printf("simulation rate: %.0f uops/s, %.0f DRAM commands/s (%.2f ms wall clock)\n",
			float64(len(k.Prog().Ops))/s, float64(res.Stats.Ops)/s, s*1e3)
	}
	fmt.Printf("peak scratch: %d bytes (subarray arenas, spill buffers, engine tables)\n", res.ScratchBytes)
	if *faultRate > 0 {
		f := res.Faults
		fmt.Printf("injected faults (rate %g, seed %d): %d TRA, %d copy, %d decay, %d stuck\n",
			*faultRate, *faultSeed, f.TRAFlips, f.CopyFlips, f.DecayFlips, f.StuckLanes)
	}
	if det != chopper.DetectorNone {
		rs := res.RecoveryStats
		fmt.Printf("recovery (%s): %d epochs, %d detections, %d corrected, %d uncorrected, %d wasted uops, %d scrubbed rows\n",
			det, rs.Epochs, rs.Detections, rs.Corrected, rs.Uncorrected, rs.WastedUops, rs.ScrubbedRows)
	}
	fmt.Println()

	// Clamp -show to [0, -lanes]: decoded slices hold exactly -lanes
	// entries, so printing more would index past them.
	n := *show
	if n > *lanes {
		n = *lanes
	}
	if n < 0 {
		n = 0
	}
	for _, in := range k.Inputs {
		vals := inVals[in.Name]
		if n < len(vals) {
			vals = vals[:n]
		}
		fmt.Printf("%-8s in  %v\n", in.Name, vals)
	}
	for _, out := range k.Outputs {
		vals := transpose.FromVertical(res.Rows[out.Name], out.Width, *lanes)
		if n < len(vals) {
			vals = vals[:n]
		}
		fmt.Printf("%-8s out %v\n", out.Name, vals)
	}
}

// runBench runs the tracked benchmark suites and writes the report. When
// outPath already holds a report, its baseline sections are carried over
// verbatim so refreshing the current numbers never loses the recorded
// pre-optimization references. sim selects the simulator-throughput suite
// (-bench), compile the cold-compile suite (-compile-bench), tiled the
// channel-sharded tiled suite (-tiled-bench), narrow the precision-
// adaptive suite (-narrow-bench); without -bench, the existing report
// supplies every section the invocation does not refresh.
func runBench(outPath string, quick, sim, compile, tiled, narrow bool) {
	note := "choppersim"
	if sim {
		note += " -bench"
	}
	if compile {
		note += " -compile-bench"
	}
	if tiled {
		note += " -tiled-bench"
	}
	if narrow {
		note += " -narrow-bench"
	}
	if quick {
		note += " -bench-quick (single iteration; not comparable across machines)"
	}
	prev, prevErr := perfbench.Load(outPath)

	var rep *perfbench.Report
	if sim {
		cur, err := perfbench.RunSuite(quick)
		if err != nil {
			fatal(err)
		}
		rep = perfbench.NewReport(cur, note)
		if prevErr == nil && len(prev.Baseline) > 0 {
			rep.Baseline = prev.Baseline
			rep.BaselineNote = prev.BaselineNote
		}
		if prevErr == nil {
			rep.Compile = prev.Compile
			rep.Tiled = prev.Tiled
			rep.Narrow = prev.Narrow
		}
	} else {
		// Section-only refresh: the simulator sections must come from an
		// existing valid report, since a report without them is invalid.
		if prevErr != nil {
			fatal(fmt.Errorf("section refresh without -bench needs an existing report: %w", prevErr))
		}
		rep = prev
	}
	if compile {
		cc, err := perfbench.RunCompileSuite(quick)
		if err != nil {
			fatal(err)
		}
		rep.SetCompile(cc, note)
	}
	if tiled {
		te, err := perfbench.RunTiledSuite(quick)
		if err != nil {
			fatal(err)
		}
		rep.SetTiled(te, note)
	}
	if narrow {
		ne, err := perfbench.RunNarrowSuite()
		if err != nil {
			fatal(err)
		}
		rep.SetNarrow(ne, note)
	}
	if err := perfbench.Validate(rep); err != nil {
		fatal(err)
	}
	if err := rep.WriteFile(outPath); err != nil {
		fatal(err)
	}
	if sim {
		fmt.Printf("%-14s %-8s %14s %12s %14s %10s\n", "workload", "arch", "ns/op", "allocs/op", "uops/s", "speedup")
		for _, r := range rep.Current {
			sp := "-"
			if s := rep.Speedup(r.Workload, r.Arch); s > 0 {
				sp = fmt.Sprintf("%.2fx", s)
			}
			fmt.Printf("%-14s %-8s %14.0f %12.0f %14.0f %10s\n",
				r.Workload, r.Arch, r.NsPerOp, r.AllocsPerOp, r.UopsPerSec, sp)
		}
	}
	if compile && rep.Compile != nil {
		fmt.Printf("\n%-14s %-8s %-9s %14s %12s %14s %10s\n",
			"workload", "arch", "opt", "ns/op", "allocs/op", "gates/s", "speedup")
		for _, r := range rep.Compile.Current {
			sp := "-"
			if s := rep.CompileSpeedup(r.Workload, r.Arch, r.Opt); s > 0 {
				sp = fmt.Sprintf("%.2fx", s)
			}
			fmt.Printf("%-14s %-8s %-9s %14.0f %12.0f %14.0f %10s\n",
				r.Workload, r.Arch, r.Opt, r.NsPerOp, r.AllocsPerOp, r.GatesPerSec, sp)
		}
	}
	if tiled && rep.Tiled != nil {
		fmt.Printf("\n%-14s %8s %6s %14s %14s %14s %10s\n",
			"workload", "channels", "tiles", "device-ns", "transfer-ns", "end-to-end-ns", "speedup")
		for _, e := range rep.Tiled.Entries {
			sp := "-"
			if e.Channels > 1 {
				if s := rep.TiledSpeedup(e.Workload); s > 0 {
					sp = fmt.Sprintf("%.2fx", s)
				}
			}
			fmt.Printf("%-14s %8d %6d %14.0f %14.0f %14.0f %10s\n",
				e.Workload, e.Channels, e.Tiles, e.DeviceNs, e.TransferNs, e.EndToEndNs, sp)
		}
	}
	if narrow && rep.Narrow != nil {
		fmt.Printf("\n%-14s %-8s %10s %10s %10s %10s %12s %12s\n",
			"workload", "arch", "base-uops", "narrowed", "reduction", "speedup", "decl-bits", "live-bits")
		for _, e := range rep.Narrow.Entries {
			fmt.Printf("%-14s %-8s %10d %10d %9.1f%% %9.2fx %12d %12d\n",
				e.Workload, e.Arch, e.BaseUops, e.NarrowUops, 100*e.UopReduction,
				e.MakespanSpeedup, e.DeclaredBits, e.LiveBits)
		}
	}
	fmt.Printf("wrote %s (%d current entries, %d baseline entries", outPath, len(rep.Current), len(rep.Baseline))
	if rep.Compile != nil {
		fmt.Printf(", %d compile entries", len(rep.Compile.Current))
	}
	if rep.Tiled != nil {
		fmt.Printf(", %d tiled entries", len(rep.Tiled.Entries))
	}
	if rep.Narrow != nil {
		fmt.Printf(", %d narrow entries", len(rep.Narrow.Entries))
	}
	fmt.Println(")")
}

// runAsm assembles and executes a raw micro-op program. Each WRITE tag t
// receives the row pattern (laneIndex ^ t) & 1 replicated bitwise — i.e. a
// deterministic but tag-dependent bit-row — and each READ is printed.
func runAsm(text string, arch isa.Arch, lanes int) {
	prog, err := isa.ParseProgram(text)
	if err != nil {
		fatal(err)
	}
	geom := dram.DefaultGeometry()
	if prog.DRowsUsed > geom.DRows() {
		fatal(fmt.Errorf("program uses %d D rows; subarray has %d", prog.DRowsUsed, geom.DRows()))
	}
	words := (lanes + 63) / 64
	io := &sim.HostIO{
		WriteData: func(tag int) []uint64 {
			row := make([]uint64, words)
			for l := 0; l < lanes; l++ {
				if (l^tag)&1 == 1 {
					row[l/64] |= 1 << uint(l%64)
				}
			}
			return row
		},
		ReadSink: func(tag int, data []uint64) {
			fmt.Printf("READ tag %d: %0*x\n", tag, words*16, data[0])
		},
	}
	ns, err := sim.RunProgram(prog, arch, geom, lanes, io)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("executed %d micro-ops in %.1f us (%d lanes)\n", len(prog.Ops), ns/1000, lanes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "choppersim:", err)
	os.Exit(1)
}

// fatalGuard is fatal with a one-line diagnostic for guard-layer stops:
// budget exhaustion prints the dimension and limit, deadline/cancel stops
// say so plainly; both exit with status 3 so scripts can tell a resource
// stop from an ordinary failure (status 1). Dispatch goes through
// chopper.ErrorClass — the same classifier chopperd's HTTP status mapper
// uses — so the CLI and the server never disagree about an error's kind.
func fatalGuard(err error) {
	switch chopper.ErrorClass(err) {
	case "budget":
		var be *chopper.BudgetError
		if errors.As(err, &be) {
			fmt.Fprintf(os.Stderr, "choppersim: budget exceeded: %s limit %d (used %d)\n", be.Dimension, be.Limit, be.Count)
		} else {
			fmt.Fprintln(os.Stderr, "choppersim: budget exceeded")
		}
		os.Exit(3)
	case "deadline":
		fmt.Fprintln(os.Stderr, "choppersim: deadline exceeded (-timeout)")
		os.Exit(3)
	case "canceled":
		fmt.Fprintln(os.Stderr, "choppersim: canceled")
		os.Exit(3)
	}
	fatal(err)
}
