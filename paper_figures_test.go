package chopper

// The paper's illustrative examples (Figures 3, 6, 7, 8), reproduced as
// executable tests: each asserts both the functional behaviour and the
// code-quality property the figure is drawn to demonstrate.

import (
	"testing"
)

// Figure 3: the comparative programming example — packed addition and
// subtraction with predication. The CHOPPER program is a handful of
// equations; its compiled form must still perform the transposition
// writes, the computation, and the result reads the SIMDRAM interface
// spells out manually.
func TestPaperFigure3(t *testing.T) {
	k, err := Compile(fig3Src, Options{Target: SIMDRAM})
	if err != nil {
		t.Fatal(err)
	}
	counts := k.Prog().Counts()
	if counts[0] == 0 { // AAP
		t.Error("no row copies generated")
	}
	// Three u8 inputs: 24 transposed bit-rows must reach the subarray.
	if got := k.Stats().Writes; got != 24 {
		t.Errorf("input writes = %d, want 24", got)
	}
	// One u8 output: 8 bit-rows come back.
	if got := k.Stats().Reads; got != 8 {
		t.Errorf("result reads = %d, want 8", got)
	}
	if err := k.Verify(2, 3); err != nil {
		t.Fatal(err)
	}
}

// Figure 6: two consecutive 4-bit summations. Without the OBS
// optimizations every intermediate bit is buffered in the D-group; with
// them, each summation's bits are consumed as produced and the
// intermediate word never materializes — the row high-water mark collapses
// and stores are elided.
func TestPaperFigure6(t *testing.T) {
	src := `
node main(a: u4, b: u4, c: u4) returns (z: u4)
vars t: u4;
let
  t = a + b;
  z = t + c;
tel`
	plain, err := Compile(src, Options{Target: Ambit}.WithOpt(OptBitslice))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compile(src, Options{Target: Ambit}.WithOpt(OptFull))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats().MaxLiveRows >= plain.Stats().MaxLiveRows {
		t.Errorf("optimized rows %d not below unoptimized %d",
			opt.Stats().MaxLiveRows, plain.Stats().MaxLiveRows)
	}
	if opt.Stats().StoresElided == 0 {
		t.Error("no intermediate buffering eliminated")
	}
	if len(opt.Prog().Ops) >= len(plain.Prog().Ops) {
		t.Errorf("optimized program (%d ops) not shorter than unoptimized (%d ops)",
			len(opt.Prog().Ops), len(plain.Prog().Ops))
	}
	if err := opt.Verify(2, 5); err != nil {
		t.Fatal(err)
	}
}

// Figure 7: A + B + CONST. Without OBS-2 the constant is written by the
// CPU and buffered in the subarray; with it, the constant's set bits come
// from the architectural C-group rows and nothing is host-written.
func TestPaperFigure7(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a + b + 0x5A; tel"
	without, err := Compile(src, Options{Target: Ambit}.WithOpt(OptSchedule))
	if err != nil {
		t.Fatal(err)
	}
	with, err := Compile(src, Options{Target: Ambit}.WithOpt(OptReuse))
	if err != nil {
		t.Fatal(err)
	}
	if without.Stats().ConstWrites == 0 {
		t.Error("without OBS-2 the CPU should write the constant rows")
	}
	if with.Stats().ConstWrites != 0 {
		t.Errorf("with OBS-2 the CPU still wrote %d constant rows", with.Stats().ConstWrites)
	}
	// Fewer host transfers and fewer total instructions.
	if with.Stats().Writes >= without.Stats().Writes {
		t.Errorf("data movement not reduced: %d vs %d writes", with.Stats().Writes, without.Stats().Writes)
	}
	if err := with.Verify(2, 7); err != nil {
		t.Fatal(err)
	}
}

// Figure 8: A + B under the Store-Copy-Compute pattern versus instruction
// renaming. With OBS-3, one-shot bitslices are host-written directly into
// the compute rows and results chain through the B-group without being
// stored — the copy traffic drops.
func TestPaperFigure8(t *testing.T) {
	src := "node main(a: u8, b: u8) returns (z: u8) let z = a + b; tel"
	scc, err := Compile(src, Options{Target: Ambit}.WithOpt(OptReuse))
	if err != nil {
		t.Fatal(err)
	}
	renamed, err := Compile(src, Options{Target: Ambit}.WithOpt(OptFull))
	if err != nil {
		t.Fatal(err)
	}
	if renamed.Stats().AAPs >= scc.Stats().AAPs {
		t.Errorf("renaming did not reduce copies: %d vs %d AAPs",
			renamed.Stats().AAPs, scc.Stats().AAPs)
	}
	if renamed.Stats().StoresElided == 0 {
		t.Error("no store-copy pairs eliminated")
	}
	// The write-redirect half of the optimization needs one-shot input
	// bitslices; in an adder every input bit feeds both the sum and the
	// carry after Ambit legalization, so demonstrate it on a bitwise op,
	// where every input bit is consumed exactly once.
	bw, err := Compile("node main(a: u8, b: u8) returns (z: u8) let z = a & b; tel",
		Options{Target: Ambit}.WithOpt(OptFull))
	if err != nil {
		t.Fatal(err)
	}
	if bw.Stats().DirectWrites == 0 {
		t.Error("no writes redirected onto the computation region")
	}
	// Both compute the same sums.
	if err := renamed.Verify(2, 9); err != nil {
		t.Fatal(err)
	}
	if err := scc.Verify(2, 9); err != nil {
		t.Fatal(err)
	}
}

// Figure 1 / Section II-B: the architectural invariants of the subarray
// model — constant rows hold their constants, TRA computes majority, and
// dual-contact rows provide negation — are exercised directly in
// internal/sim's tests; here we assert the compiler respects the row-group
// contract: generated programs never write the C-group.
func TestCompilerNeverWritesConstantRows(t *testing.T) {
	for _, lv := range allOpts {
		k, err := Compile(fig3Src, Options{Target: Ambit}.WithOpt(lv))
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range k.Prog().Ops {
			for _, d := range op.Dsts() {
				if d.IsCGroup() {
					t.Fatalf("%v: op %d (%v) writes constant row %v", lv, i, op, d)
				}
			}
		}
	}
}
